"""Quantisation-error analysis for block floating point formats (Section III-B).

For round-to-nearest block floating point, the quantisation error is zero-mean
with variance

    ``sigma^2 = 2**(-2 Lm) / 12 * sum_i p(gamma_i) * 2**(2 gamma_i)``   (Eq. 8)

where ``Lm`` is the mantissa length and ``p(gamma)`` is the probability mass
function of the selected *block exponent*.  With the mantissa length fixed,
the only lever is the distribution of the shared exponent: BBFP's Eq. 9 rule
selects exponents that are ``m - o`` smaller than BFP's max rule, shrinking
``2**(2 gamma)`` and therefore the variance — which is the formal argument for
why BBFP has lower quantisation error than BFP at equal mantissa width.

This module provides the analytic variance (given an exponent PMF), empirical
exponent PMFs measured from data, and empirical MSE helpers used by Fig. 3 and
the overlap-width search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bbfp import BBFPConfig, quantize_bbfp
from repro.core.blockfp import BFPConfig, quantize_bfp

__all__ = [
    "block_exponent_pmf",
    "analytic_error_variance",
    "predicted_variance",
    "empirical_mse",
    "empirical_error_variance",
    "ErrorReport",
    "compare_formats",
]


def block_exponent_pmf(shared_exponents: np.ndarray) -> tuple:
    """Empirical probability mass function of the selected block exponents.

    Returns ``(levels, probabilities)`` where ``levels`` are the distinct
    shared-exponent values observed and ``probabilities`` sum to one.
    """
    exps = np.asarray(shared_exponents).ravel()
    if exps.size == 0:
        raise ValueError("cannot compute a PMF from an empty exponent array")
    levels, counts = np.unique(exps, return_counts=True)
    return levels, counts / counts.sum()


def analytic_error_variance(mantissa_bits: int, levels: np.ndarray, probabilities: np.ndarray) -> float:
    """Evaluate Eq. 8 for a given mantissa length and block-exponent PMF.

    The per-element quantisation step at block exponent ``gamma`` is
    ``2**(gamma - (Lm - 1))``; a uniform rounding error in ``[-step/2, step/2]``
    has variance ``step**2 / 12``, and the total variance is the expectation
    over the exponent distribution.
    """
    levels = np.asarray(levels, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if levels.shape != probabilities.shape:
        raise ValueError("levels and probabilities must have the same shape")
    if not np.isclose(probabilities.sum(), 1.0):
        raise ValueError("probabilities must sum to 1")
    steps_sq = np.exp2(2.0 * (levels - (mantissa_bits - 1)))
    return float(np.sum(probabilities * steps_sq) / 12.0)


def predicted_variance(x: np.ndarray, config) -> float:
    """Analytic Eq. 8 variance for quantising ``x`` with a BFP or BBFP config.

    The shared-exponent PMF is measured from ``x`` itself (the paper does the
    same: the PMF is a property of the data distribution and the alignment
    rule).  For BBFP the high group's coarser step is accounted for by
    shifting its effective exponent up by ``m - o``.
    """
    if isinstance(config, BBFPConfig):
        quantized = quantize_bbfp(x, config)
        exps = quantized.shared_exponents[..., None] + quantized.flags * (
            config.mantissa_bits - config.overlap_bits
        )
        levels, pmf = block_exponent_pmf(exps)
        return analytic_error_variance(config.mantissa_bits, levels, pmf)
    if isinstance(config, BFPConfig):
        quantized = quantize_bfp(x, config)
        levels, pmf = block_exponent_pmf(quantized.shared_exponents)
        return analytic_error_variance(config.mantissa_bits, levels, pmf)
    raise TypeError(f"unsupported config type {type(config)!r}")


def empirical_mse(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Mean squared error between a tensor and its quantised reconstruction."""
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    if x.shape != x_hat.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {x_hat.shape}")
    return float(np.mean((x - x_hat) ** 2))


def empirical_error_variance(x: np.ndarray, config) -> float:
    """Measured quantisation MSE of ``x`` under a BFP or BBFP config."""
    if isinstance(config, BBFPConfig):
        x_hat = quantize_bbfp(x, config).dequantize()
    elif isinstance(config, BFPConfig):
        x_hat = quantize_bfp(x, config).dequantize()
    else:
        raise TypeError(f"unsupported config type {type(config)!r}")
    return empirical_mse(x, x_hat)


@dataclass(frozen=True)
class ErrorReport:
    """Summary of analytic and empirical error for one format on one tensor."""

    format_name: str
    analytic_variance: float
    empirical_mse: float
    relative_mse: float

    def as_dict(self) -> dict:
        return {
            "format": self.format_name,
            "analytic_variance": self.analytic_variance,
            "empirical_mse": self.empirical_mse,
            "relative_mse": self.relative_mse,
        }


def compare_formats(x: np.ndarray, configs) -> list:
    """Compare analytic and empirical quantisation error of several formats on ``x``.

    Returns one :class:`ErrorReport` per config, in input order; the relative
    MSE normalises by the tensor's mean square so that tensors of different
    magnitude are comparable.
    """
    x = np.asarray(x, dtype=np.float64)
    denom = float(np.mean(x**2)) or 1.0
    reports = []
    for config in configs:
        reports.append(
            ErrorReport(
                format_name=config.name,
                analytic_variance=predicted_variance(x, config),
                empirical_mse=empirical_error_variance(x, config),
                relative_mse=empirical_error_variance(x, config) / denom,
            )
        )
    return reports
