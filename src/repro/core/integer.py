"""Plain fixed-point (INT) quantisation baselines.

The paper motivates BBFP by the failure mode of low-bit integer quantisation
on LLMs: a symmetric INTb grid has a uniform step over the whole dynamic
range, so the activation outliers (Fig. 1(a)) force a huge step and small
values collapse to zero.  This module provides symmetric per-tensor and
per-channel INT quantisation used as a baseline and as a building block of
the outlier-aware comparators (Olive, Oltron, SmoothQuant, OmniQuant).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.serializable import SerializableConfig

__all__ = ["Granularity", "IntQuantConfig", "int_quantize", "int_quantize_dequantize"]


class Granularity(enum.Enum):
    """Scope over which a single scale factor is shared."""

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"
    PER_BLOCK = "per_block"


@dataclass(frozen=True)
class IntQuantConfig(SerializableConfig):
    """Configuration of a symmetric integer quantiser.

    Parameters
    ----------
    bits:
        Total bits including the sign (INT8 -> codes in [-127, 127]).
    granularity:
        Whether one scale is shared per tensor, per channel (last axis) or per
        block of ``block_size`` elements along the last axis.
    block_size:
        Only used for ``PER_BLOCK``.
    clip_ratio:
        Optional clipping of the observed maximum before computing the scale;
        ``1.0`` means no clipping.  Outlier-aware baselines tune this.
    """

    bits: int
    granularity: Granularity = Granularity.PER_TENSOR
    block_size: int = 32
    clip_ratio: float = 1.0

    def __post_init__(self):
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")
        if not 0.0 < self.clip_ratio <= 1.0:
            raise ValueError(f"clip_ratio must be in (0, 1], got {self.clip_ratio}")

    @property
    def name(self) -> str:
        return f"INT{self.bits}"

    @property
    def max_code(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def equivalent_bit_width(self) -> float:
        return float(self.bits)

    def memory_efficiency(self, reference_bits: float = 16.0) -> float:
        return reference_bits / self.equivalent_bit_width()


def _scales(x: np.ndarray, config: IntQuantConfig) -> np.ndarray:
    """Compute the symmetric scale (step size) for ``x`` under ``config``."""
    absx = np.abs(x)
    if config.granularity is Granularity.PER_TENSOR:
        max_abs = np.max(absx) if absx.size else 0.0
        max_abs = np.asarray(max_abs)
    elif config.granularity is Granularity.PER_CHANNEL:
        max_abs = absx.max(axis=tuple(range(absx.ndim - 1)), keepdims=True) if absx.ndim else absx
    elif config.granularity is Granularity.PER_BLOCK:
        length = x.shape[-1]
        pad = (-length) % config.block_size
        padded = np.pad(absx, [(0, 0)] * (absx.ndim - 1) + [(0, pad)])
        blocked = padded.reshape(padded.shape[:-1] + (-1, config.block_size))
        block_max = blocked.max(axis=-1, keepdims=True)
        block_max = np.broadcast_to(block_max, blocked.shape).reshape(padded.shape)
        max_abs = block_max[..., :length]
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown granularity {config.granularity}")
    max_abs = max_abs * config.clip_ratio
    scale = np.where(max_abs > 0, max_abs / config.max_code, 1.0)
    return scale


def int_quantize(x: np.ndarray, config: IntQuantConfig) -> tuple:
    """Quantise ``x`` symmetrically; returns ``(codes, scale)``.

    ``codes`` are round-to-nearest integers clipped to ``[-max_code, max_code]``
    and ``scale`` broadcasts against ``codes`` so that
    ``dequantised = codes * scale``.
    """
    x = np.asarray(x, dtype=np.float64)
    scale = _scales(x, config)
    codes = np.rint(x / scale)
    codes = np.clip(codes, -config.max_code, config.max_code).astype(np.int64)
    return codes, scale


def int_quantize_dequantize(x: np.ndarray, config: IntQuantConfig) -> np.ndarray:
    """Symmetric fake quantisation: quantise then dequantise."""
    codes, scale = int_quantize(x, config)
    return codes.astype(np.float64) * scale
