"""IEEE-754-style floating point decomposition and minifloat specifications.

Every block format in this repository starts from the same primitive: splitting
a real value into ``sign``, ``exponent`` and ``mantissa`` fields.  This module
provides that primitive plus a small :class:`FloatSpec` description of the
narrow floating-point formats (FP16, BF16, FP8, FP4) the paper uses as
baselines and conversion sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.serializable import SerializableConfig

__all__ = [
    "FloatSpec",
    "FP32",
    "FP16",
    "BF16",
    "FP8_E4M3",
    "FP8_E5M2",
    "FP4_E2M1",
    "decompose_float",
    "exponent_of",
    "compose_float",
]


@dataclass(frozen=True)
class FloatSpec(SerializableConfig):
    """Description of a sign/exponent/mantissa floating point format.

    Parameters
    ----------
    name:
        Human readable name, e.g. ``"FP16"``.  Cosmetic only — two specs
        with the same exponent/mantissa widths describe the same format and
        compare equal regardless of how they are labelled.
    exponent_bits:
        Width of the exponent field.
    mantissa_bits:
        Number of *stored* (explicit) mantissa bits; the leading one is
        implicit for normal numbers.
    """

    name: str = field(compare=False)
    exponent_bits: int
    mantissa_bits: int

    @property
    def bias(self) -> int:
        """IEEE-style exponent bias, ``2**(exponent_bits - 1) - 1``."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return (1 << self.exponent_bits) - 2 - self.bias

    @property
    def min_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        frac = 2.0 - 2.0 ** (-self.mantissa_bits)
        return frac * 2.0 ** self.max_exponent

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** self.min_exponent

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return 2.0 ** (self.min_exponent - self.mantissa_bits)

    @property
    def total_bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    def representable_positive_values(self) -> np.ndarray:
        """Enumerate all finite positive representable values (small formats only).

        Useful for exhaustive tests of FP4/FP8 rounding.  The array is sorted
        ascending and excludes zero.
        """
        if self.total_bits > 10:
            raise ValueError(
                f"representable_positive_values is only supported for narrow formats, "
                f"got {self.total_bits}-bit {self.name}"
            )
        values = []
        for biased_exp in range(0, (1 << self.exponent_bits) - 1):
            for mant in range(1 << self.mantissa_bits):
                if biased_exp == 0:
                    value = (mant / (1 << self.mantissa_bits)) * 2.0 ** self.min_exponent
                else:
                    value = (1.0 + mant / (1 << self.mantissa_bits)) * 2.0 ** (
                        biased_exp - self.bias
                    )
                if value > 0:
                    values.append(value)
        return np.array(sorted(set(values)))


FP32 = FloatSpec("FP32", exponent_bits=8, mantissa_bits=23)
FP16 = FloatSpec("FP16", exponent_bits=5, mantissa_bits=10)
BF16 = FloatSpec("BF16", exponent_bits=8, mantissa_bits=7)
FP8_E4M3 = FloatSpec("FP8_E4M3", exponent_bits=4, mantissa_bits=3)
FP8_E5M2 = FloatSpec("FP8_E5M2", exponent_bits=5, mantissa_bits=2)
FP4_E2M1 = FloatSpec("FP4_E2M1", exponent_bits=2, mantissa_bits=1)


def exponent_of(x: np.ndarray, zero_exponent: int = -127) -> np.ndarray:
    """Return the unbiased binary exponent ``floor(log2(|x|))`` of each element.

    Zeros are assigned ``zero_exponent`` so they never win a "max exponent"
    reduction inside a block; the value mirrors how a hardware encoder treats
    an all-zero lane (exponent field of zero after biasing).

    Parameters
    ----------
    x:
        Array of finite floats.
    zero_exponent:
        Exponent assigned to exact zeros.
    """
    x = np.asarray(x, dtype=np.float64)
    mant, exp = np.frexp(np.abs(x))
    # frexp returns x = mant * 2**exp with mant in [0.5, 1); IEEE exponent of
    # the normalised 1.m form is exp - 1.
    exponents = exp.astype(np.int64) - 1
    exponents = np.where(x == 0.0, np.int64(zero_exponent), exponents)
    return exponents


def decompose_float(x: np.ndarray) -> tuple:
    """Split ``x`` into ``(sign, exponent, mantissa)`` with ``x = sign * mantissa * 2**exponent``.

    ``sign`` is +/-1 (``+1`` for zero), ``mantissa`` lies in ``[1, 2)`` for
    non-zero values and is ``0`` for zeros, ``exponent`` is the unbiased
    binary exponent.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.where(np.signbit(x), -1.0, 1.0)
    exponent = exponent_of(x)
    mantissa = np.where(x == 0.0, 0.0, np.abs(x) / np.exp2(exponent.astype(np.float64)))
    return sign, exponent, mantissa


def compose_float(sign: np.ndarray, exponent: np.ndarray, mantissa: np.ndarray) -> np.ndarray:
    """Inverse of :func:`decompose_float`."""
    sign = np.asarray(sign, dtype=np.float64)
    exponent = np.asarray(exponent, dtype=np.float64)
    mantissa = np.asarray(mantissa, dtype=np.float64)
    return sign * mantissa * np.exp2(exponent)
