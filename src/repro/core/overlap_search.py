"""Overlap-bit-width selection (Algorithm 1 of the paper).

For a fixed total mantissa width ``m``, the overlap width ``o`` trades
accuracy against hardware cost: wider overlap reduces truncation error of the
high (flag = 1) group but raises the shared exponent, hurting small values,
and it also changes the MAC datapath cost (the flag-controlled shifter width
is ``m - o``).  Because different LLMs have different data distributions, the
paper searches ``o`` per model with a normalised weighted score

    ``score[o] = w * Overhead_norm[o] + (1 - w) * PPL_norm[o]``

and picks the minimum.  The search here is generic: the PPL and overhead
evaluators are injected as callables, so the same algorithm runs with the
real LLM perplexity evaluator (`repro.llm`), with a fast MSE proxy, or with a
mocked evaluator in the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bbfp import BBFPConfig

__all__ = ["OverlapCandidate", "OverlapSearchResult", "select_overlap_width", "mse_ppl_proxy"]


@dataclass(frozen=True)
class OverlapCandidate:
    """Evaluation record for one candidate overlap width."""

    overlap_bits: int
    ppl: float
    overhead: float
    ppl_norm: float
    overhead_norm: float
    score: float

    def as_dict(self) -> dict:
        return {
            "overlap_bits": self.overlap_bits,
            "ppl": self.ppl,
            "overhead": self.overhead,
            "ppl_norm": self.ppl_norm,
            "overhead_norm": self.overhead_norm,
            "score": self.score,
        }


@dataclass(frozen=True)
class OverlapSearchResult:
    """Outcome of Algorithm 1: the chosen overlap width plus the full sweep."""

    mantissa_bits: int
    overhead_weight: float
    best_overlap: int
    candidates: tuple

    @property
    def best_config(self) -> BBFPConfig:
        return BBFPConfig(mantissa_bits=self.mantissa_bits, overlap_bits=self.best_overlap)

    def as_rows(self) -> list:
        return [candidate.as_dict() for candidate in self.candidates]


def select_overlap_width(
    mantissa_bits: int,
    ppl_fn,
    overhead_fn,
    overhead_weight: float = 0.5,
    block_size: int = 32,
) -> OverlapSearchResult:
    """Run Algorithm 1: sweep ``o`` in ``[0, m)``, normalise, score and pick the minimum.

    Parameters
    ----------
    mantissa_bits:
        The fixed mantissa width ``m``.
    ppl_fn:
        Callable ``BBFPConfig -> float`` returning the model perplexity (or any
        accuracy proxy where lower is better) under that configuration.
    overhead_fn:
        Callable ``BBFPConfig -> float`` returning the hardware overhead (area,
        energy or a combined metric; lower is better).
    overhead_weight:
        The ``w`` of Algorithm 1; ``w = 1`` optimises purely for hardware,
        ``w = 0`` purely for accuracy.
    block_size:
        Block size of the candidate configurations.
    """
    if not 0.0 <= overhead_weight <= 1.0:
        raise ValueError(f"overhead_weight must lie in [0, 1], got {overhead_weight}")
    if mantissa_bits < 2:
        raise ValueError("Algorithm 1 needs at least 2 mantissa bits to have a choice of overlap")

    overlaps = list(range(mantissa_bits))
    ppls = []
    overheads = []
    for o in overlaps:
        config = BBFPConfig(mantissa_bits=mantissa_bits, overlap_bits=o, block_size=block_size)
        ppls.append(float(ppl_fn(config)))
        overheads.append(float(overhead_fn(config)))

    ppls = np.asarray(ppls, dtype=np.float64)
    overheads = np.asarray(overheads, dtype=np.float64)
    ppl_max = ppls.max() if ppls.max() > 0 else 1.0
    overhead_max = overheads.max() if overheads.max() > 0 else 1.0
    ppl_norm = ppls / ppl_max
    overhead_norm = overheads / overhead_max
    scores = overhead_weight * overhead_norm + (1.0 - overhead_weight) * ppl_norm

    candidates = tuple(
        OverlapCandidate(
            overlap_bits=o,
            ppl=float(ppls[i]),
            overhead=float(overheads[i]),
            ppl_norm=float(ppl_norm[i]),
            overhead_norm=float(overhead_norm[i]),
            score=float(scores[i]),
        )
        for i, o in enumerate(overlaps)
    )
    best_overlap = int(overlaps[int(np.argmin(scores))])
    return OverlapSearchResult(
        mantissa_bits=mantissa_bits,
        overhead_weight=overhead_weight,
        best_overlap=best_overlap,
        candidates=candidates,
    )


def mse_ppl_proxy(calibration_tensors):
    """Build a fast PPL proxy from calibration tensors.

    Returns a callable ``BBFPConfig -> float`` equal to the summed relative
    quantisation MSE over the calibration tensors.  Useful when running
    Algorithm 1 without a full perplexity evaluation (the ordering of
    candidates is what matters for the search).
    """
    from repro.core.bbfp import bbfp_quantize_dequantize

    tensors = [np.asarray(t, dtype=np.float64) for t in calibration_tensors]
    if not tensors:
        raise ValueError("need at least one calibration tensor")

    def proxy(config: BBFPConfig) -> float:
        total = 0.0
        for t in tensors:
            t_hat = bbfp_quantize_dequantize(t, config)
            denom = float(np.mean(t**2)) or 1.0
            total += float(np.mean((t - t_hat) ** 2)) / denom
        return total

    return proxy
