"""Atomic file-write helpers shared by every on-disk artefact writer.

Result files, cache entries, run manifests and model checkpoints are all
read back by later runs (``--resume``, cache lookups) or by concurrent
worker processes, so none of them may ever be observed half-written.  The
pattern is the classic write-to-sibling-then-``os.replace``: the temporary
name carries the writer's PID so concurrent writers of the same target
cannot clobber each other's scratch file, and the rename is atomic on POSIX.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_writer"]


@contextmanager
def atomic_writer(path, mode: str = "wb"):
    """Context manager yielding a file handle whose content appears atomically.

    On clean exit the temporary file is renamed over ``path``; on error it is
    removed and ``path`` is left untouched.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, mode) as fh:
            yield fh
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_text(path, text: str) -> Path:
    """Atomically replace ``path`` with ``text``; returns ``path``."""
    path = Path(path)
    with atomic_writer(path, "w") as fh:
        fh.write(text)
    return path
