"""Bidirectional Block Floating Point (BBFP) quantisation — the paper's core contribution.

BBFP (Section III) extends BFP with a per-element 1-bit *flag* and ``o``
*overlap* bits.  Instead of aligning every element to the block's maximum
exponent, the shared exponent is chosen as

    ``E_shared = max(E) - (m - o)``                      (Eq. 9)

Elements whose own exponent exceeds ``E_shared`` set ``flag = 1`` and are
stored as a *high* mantissa: their quantisation step is scaled up by
``f = 2**(m - o)`` (Eq. 6).  All other elements set ``flag = 0`` and are
stored as a *low* mantissa whose step is the fine one, ``2**(E_shared - (m-1))``.

Consequences (Fig. 2(b)):

* the representable mantissa range grows by ``2**(m-o)`` (``4x`` for
  BBFP(4,2): +/-7.5 instead of +/-1.875) so outliers are still captured;
* small and moderate values — the vast majority of LLM weights/activations —
  keep ``m - o`` extra bits of resolution compared to BFP with the same
  mantissa width, which is exactly the quantisation-error reduction the
  paper exploits.

The paper writes a configuration as ``BBFP(m, o)``; the shared exponent field
is always 5 bits wide and the per-element storage is ``m`` magnitude bits +
1 sign bit + 1 flag bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blocking import BlockLayout, from_blocks, to_blocks
from repro.core.exponent_selection import (
    ExponentStrategy,
    select_shared_exponent,
    strategy_from_name,
)
from repro.core.floatspec import exponent_of
from repro.core.rounding import RoundingMode, round_magnitudes
from repro.core.serializable import SerializableConfig

__all__ = ["BBFPConfig", "BBFPTensor", "quantize_bbfp", "bbfp_quantize_dequantize"]


@dataclass(frozen=True)
class BBFPConfig(SerializableConfig):
    """Configuration of a BBFP(m, o) format.

    Parameters
    ----------
    mantissa_bits:
        ``m`` — magnitude bits stored per element.
    overlap_bits:
        ``o`` — overlap bits; must satisfy ``0 <= o < m``.  A larger overlap
        reduces truncation error of the high (flag = 1) group but raises the
        shared exponent, hurting the low group (Section III-D).
    block_size:
        Elements per shared exponent (32 in the paper).
    exponent_bits:
        Shared exponent width (5 in all paper configurations).
    exponent_strategy:
        Shared-exponent rule; the default is the paper's Eq. 9
        (``max(E) - (m - o)``).  ``max-1`` / ``max-3`` style ablations from
        Fig. 3 are available through
        :class:`repro.core.exponent_selection.ExponentStrategy`.
    """

    mantissa_bits: int
    overlap_bits: int
    block_size: int = 32
    exponent_bits: int = 5
    exponent_strategy: ExponentStrategy = ExponentStrategy.BBFP_DEFAULT
    rounding: RoundingMode = RoundingMode.NEAREST

    def __post_init__(self):
        if self.mantissa_bits < 1:
            raise ValueError(f"mantissa_bits must be >= 1, got {self.mantissa_bits}")
        if not 0 <= self.overlap_bits < self.mantissa_bits:
            raise ValueError(
                f"overlap_bits must satisfy 0 <= o < m, got o={self.overlap_bits} m={self.mantissa_bits}"
            )
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.exponent_bits < 2:
            raise ValueError(f"exponent_bits must be >= 2, got {self.exponent_bits}")

    @property
    def name(self) -> str:
        return f"BBFP({self.mantissa_bits},{self.overlap_bits})"

    @property
    def high_group_factor(self) -> int:
        """The flag = 1 scale factor ``f = 2**(m - o)`` (Eq. 6)."""
        return 1 << (self.mantissa_bits - self.overlap_bits)

    @property
    def max_mantissa_level(self) -> int:
        """Largest stored magnitude code, ``2**m - 1``."""
        return (1 << self.mantissa_bits) - 1

    @property
    def exponent_min(self) -> int:
        return -(1 << (self.exponent_bits - 1)) + 1

    @property
    def exponent_max(self) -> int:
        return 1 << (self.exponent_bits - 1)

    def mantissa_range(self) -> tuple:
        """Smallest/largest representable mantissa magnitude relative to ``2**E_shared``.

        For BBFP(4,2) the upper bound is ``7.5`` (Fig. 2(b)): the low group
        reaches 1.875 and the high group multiplies that by ``2**(m-o) = 4``.
        """
        step = 2.0 ** (-(self.mantissa_bits - 1))
        return step, self.max_mantissa_level * step * self.high_group_factor

    def equivalent_bit_width(self) -> float:
        """Average storage bits per element (Table I "Equivalent Bit-Width").

        ``m`` magnitude bits + 1 sign bit + 1 flag bit + the shared exponent
        amortised over the block: BBFP(6,3) with blocks of 32 gives 8.16 bits.
        """
        return self.mantissa_bits + 2 + self.exponent_bits / self.block_size

    def memory_efficiency(self, reference_bits: float = 16.0) -> float:
        """Memory density improvement relative to FP16 (Table I "Mem Eff.")."""
        return reference_bits / self.equivalent_bit_width()


@dataclass
class BBFPTensor:
    """A tensor quantised to BBFP, stored with hardware-faithful fields.

    Attributes
    ----------
    config:
        The :class:`BBFPConfig` used for quantisation.
    signs:
        ``+/-1`` per element, blocked shape ``(..., num_blocks, block_size)``.
    flags:
        Per-element flag bit (0 = low mantissa, 1 = high mantissa).
    mantissas:
        Integer magnitude codes in ``[0, 2**m - 1]``.
    shared_exponents:
        Integer shared exponent per block, shape ``(..., num_blocks)``.
    layout:
        Blocking metadata used to restore the original tensor shape.
    """

    config: BBFPConfig
    signs: np.ndarray
    flags: np.ndarray
    mantissas: np.ndarray
    shared_exponents: np.ndarray
    layout: BlockLayout = field(repr=False)

    @property
    def block_values(self) -> np.ndarray:
        """Real values of each block element (still in blocked layout)."""
        base_step = np.exp2(
            self.shared_exponents[..., None].astype(np.float64) - (self.config.mantissa_bits - 1)
        )
        factor = np.where(self.flags == 1, float(self.config.high_group_factor), 1.0)
        return self.signs * self.mantissas.astype(np.float64) * base_step * factor

    def dequantize(self) -> np.ndarray:
        """Reconstruct a dense float tensor in the original shape."""
        return from_blocks(self.block_values, self.layout)

    def memory_bits(self) -> int:
        """Total storage footprint in bits (mantissas + signs + flags + shared exponents)."""
        elements = int(np.prod(self.mantissas.shape))
        blocks = int(np.prod(self.shared_exponents.shape))
        return elements * (self.config.mantissa_bits + 2) + blocks * self.config.exponent_bits

    def high_fraction(self) -> float:
        """Fraction of elements stored in the high (flag = 1) group.

        With the default Eq. 9 strategy this is the fraction of "outlier-ish"
        elements in each block — useful for analysing how BBFP adapts to the
        outlier profile of different models (Fig. 8 discussion).
        """
        return float(np.mean(self.flags))


def quantize_bbfp(x: np.ndarray, config: BBFPConfig, axis: int = -1,
                  rng: np.random.Generator = None) -> BBFPTensor:
    """Quantise ``x`` to BBFP(m, o) along ``axis``.

    The conversion follows Fig. 2(d):

    1. compute per-element exponents and the per-block shared exponent
       according to the configured strategy (Eq. 9 by default);
    2. elements with exponent above the shared exponent are flagged
       (flag = 1, "high" mantissa, coarse step ``2**(m-o)`` times larger);
    3. all mantissas are rounded to ``m`` bits relative to their group's step
       with ``config.rounding`` (round-to-nearest by default; ``rng`` only
       matters for stochastic rounding).
    """
    blocks, layout = to_blocks(x, config.block_size, axis=axis)
    exponents = exponent_of(blocks)
    shared = select_shared_exponent(
        exponents,
        config.exponent_strategy,
        config.mantissa_bits,
        overlap_bits=config.overlap_bits,
        exponent_min=config.exponent_min,
        exponent_max=config.exponent_max,
    )
    flags = (exponents > shared[..., None]).astype(np.int8)
    base_step = np.exp2(shared[..., None].astype(np.float64) - (config.mantissa_bits - 1))
    step = np.where(flags == 1, base_step * config.high_group_factor, base_step)
    signs = np.where(blocks < 0, -1.0, 1.0)
    codes = round_magnitudes(np.abs(blocks) / step, config.rounding, rng=rng)
    codes = np.clip(codes, 0, config.max_mantissa_level).astype(np.int64)
    return BBFPTensor(
        config=config,
        signs=signs,
        flags=flags,
        mantissas=codes,
        shared_exponents=shared,
        layout=layout,
    )


def bbfp_quantize_dequantize(x: np.ndarray, config: BBFPConfig, axis: int = -1,
                             rng: np.random.Generator = None) -> np.ndarray:
    """Quantise then immediately dequantise (fake quantisation for accuracy studies)."""
    return quantize_bbfp(x, config, axis=axis, rng=rng).dequantize()


def parse_bbfp_name(name: str) -> BBFPConfig:
    """Parse a paper-style name like ``"BBFP(4,2)"`` into a :class:`BBFPConfig`."""
    text = name.strip().upper().replace(" ", "")
    if not (text.startswith("BBFP(") and text.endswith(")")):
        raise ValueError(f"not a BBFP name: {name!r}")
    inner = text[len("BBFP(") : -1]
    parts = inner.split(",")
    if len(parts) not in (2, 3):
        raise ValueError(f"expected BBFP(m,o) or BBFP(m,o,e), got {name!r}")
    m, o = int(parts[0]), int(parts[1])
    exponent_bits = int(parts[2]) if len(parts) == 3 else 5
    return BBFPConfig(mantissa_bits=m, overlap_bits=o, exponent_bits=exponent_bits)
