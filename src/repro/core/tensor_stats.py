"""Tensor distribution statistics: the Fig. 1(a) outlier analysis.

The paper's motivating observation is that LLM weights are well-behaved while
activations contain a small number of extreme outliers (10x the average in
weights, up to 100x in activations), which integer formats cannot capture
without destroying the resolution of everything else.  This module provides
the statistics used to quantify that observation and to characterise the
synthetic model families of :mod:`repro.llm.zoo` (Llama-like: more outliers,
OPT-like: fewer outliers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TensorStats",
    "collect_stats",
    "outlier_ratio",
    "outlier_magnitude",
    "kurtosis",
    "absolute_histogram",
]


def outlier_ratio(x: np.ndarray, threshold_sigmas: float = 6.0) -> float:
    """Fraction of elements whose magnitude exceeds ``threshold_sigmas`` standard deviations."""
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return 0.0
    std = float(np.std(x))
    if std == 0.0:
        return 0.0
    return float(np.mean(np.abs(x) > threshold_sigmas * std))


def outlier_magnitude(x: np.ndarray, quantile: float = 0.999) -> float:
    """Ratio between the extreme quantile of |x| and the mean of |x|.

    The paper's Fig. 1(a) annotations ("average outliers ~10x", "small extreme
    ~100x") correspond to this ratio for weights and activations respectively.
    """
    absx = np.abs(np.asarray(x, dtype=np.float64).ravel())
    if absx.size == 0:
        return 0.0
    mean = float(np.mean(absx))
    if mean == 0.0:
        return 0.0
    return float(np.quantile(absx, quantile) / mean)


def kurtosis(x: np.ndarray) -> float:
    """Excess kurtosis (Fisher); heavy-tailed distributions have large positive values."""
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size < 2:
        return 0.0
    mean = x.mean()
    var = x.var()
    if var == 0.0:
        return 0.0
    return float(np.mean((x - mean) ** 4) / var**2 - 3.0)


def absolute_histogram(x: np.ndarray, bins: int = 64, max_value: float = None) -> tuple:
    """Histogram of absolute values (Fig. 1(a)); returns ``(bin_edges, counts)``."""
    absx = np.abs(np.asarray(x, dtype=np.float64).ravel())
    if max_value is None:
        max_value = float(absx.max()) if absx.size else 1.0
    max_value = max(max_value, np.finfo(np.float64).tiny)
    counts, edges = np.histogram(absx, bins=bins, range=(0.0, max_value))
    return edges, counts


@dataclass(frozen=True)
class TensorStats:
    """Summary statistics of a weight or activation tensor."""

    name: str
    mean_abs: float
    max_abs: float
    std: float
    kurtosis: float
    outlier_ratio: float
    outlier_magnitude: float
    dynamic_range_bits: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "mean_abs": self.mean_abs,
            "max_abs": self.max_abs,
            "std": self.std,
            "kurtosis": self.kurtosis,
            "outlier_ratio": self.outlier_ratio,
            "outlier_magnitude": self.outlier_magnitude,
            "dynamic_range_bits": self.dynamic_range_bits,
        }


def collect_stats(x: np.ndarray, name: str = "tensor") -> TensorStats:
    """Compute a :class:`TensorStats` summary for ``x``.

    ``dynamic_range_bits`` is the log2 ratio between the maximum magnitude and
    the smallest non-zero magnitude — the number of binades a format must span
    to represent the tensor without clipping or flushing to zero.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    absx = np.abs(x)
    nonzero = absx[absx > 0]
    if nonzero.size:
        dynamic_range = float(np.log2(nonzero.max() / nonzero.min()))
    else:
        dynamic_range = 0.0
    return TensorStats(
        name=name,
        mean_abs=float(absx.mean()) if absx.size else 0.0,
        max_abs=float(absx.max()) if absx.size else 0.0,
        std=float(x.std()) if x.size else 0.0,
        kurtosis=kurtosis(x),
        outlier_ratio=outlier_ratio(x),
        outlier_magnitude=outlier_magnitude(x),
        dynamic_range_bits=dynamic_range,
    )
