"""Mantissa rounding modes for the block floating point quantisers.

The paper's error analysis (Eq. 8) assumes round-to-nearest, which is what the
BBAL encoder implements and what :func:`repro.core.blockfp.quantize_bfp` /
:func:`repro.core.bbfp.quantize_bbfp` use by default.  Real hardware encoders
sometimes truncate instead (it removes the rounding adder from the critical
path), and quantisation-aware training often uses stochastic rounding to keep
the error zero-mean across steps.  This module provides all three so the
ablation benches can quantify what the choice costs:

``NEAREST``
    Round half away from zero (``np.rint`` on magnitudes) — the paper default.
``TRUNCATE``
    Drop the bits below the step (floor of the magnitude); biased towards
    zero, roughly doubles the error variance versus nearest.
``STOCHASTIC``
    Round up with probability equal to the fractional part; unbiased in
    expectation but with higher per-sample variance than nearest.

All functions operate on *magnitude codes* (``|x| / step``), matching how the
quantisers use them; signs are handled by the caller.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["RoundingMode", "round_magnitudes", "rounding_from_name"]


class RoundingMode(enum.Enum):
    """How a mantissa magnitude is mapped onto the integer code grid."""

    NEAREST = "nearest"
    TRUNCATE = "truncate"
    STOCHASTIC = "stochastic"


_ALIASES = {
    "nearest": RoundingMode.NEAREST,
    "rne": RoundingMode.NEAREST,
    "round": RoundingMode.NEAREST,
    "truncate": RoundingMode.TRUNCATE,
    "trunc": RoundingMode.TRUNCATE,
    "floor": RoundingMode.TRUNCATE,
    "stochastic": RoundingMode.STOCHASTIC,
    "sr": RoundingMode.STOCHASTIC,
}


def rounding_from_name(name) -> RoundingMode:
    """Resolve a rounding mode from a :class:`RoundingMode` or a string alias."""
    if isinstance(name, RoundingMode):
        return name
    key = str(name).strip().lower()
    if key not in _ALIASES:
        raise ValueError(f"unknown rounding mode {name!r}; known: {sorted(set(_ALIASES))}")
    return _ALIASES[key]


def round_magnitudes(
    magnitudes: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST,
    rng: np.random.Generator = None,
) -> np.ndarray:
    """Round non-negative real-valued codes to integers according to ``mode``.

    Parameters
    ----------
    magnitudes:
        Non-negative array of ``|x| / step`` values.
    mode:
        Rounding mode (or string alias).
    rng:
        Random generator used by :attr:`RoundingMode.STOCHASTIC`; a fixed
        default generator is created when omitted so results stay
        reproducible.

    Returns
    -------
    numpy.ndarray
        Float array of integer-valued codes (clipping to the format's code
        range is the caller's job).
    """
    mode = rounding_from_name(mode)
    magnitudes = np.asarray(magnitudes, dtype=np.float64)
    if np.any(magnitudes < 0):
        raise ValueError("round_magnitudes expects non-negative magnitude codes")
    if mode is RoundingMode.NEAREST:
        return np.rint(magnitudes)
    if mode is RoundingMode.TRUNCATE:
        return np.floor(magnitudes)
    if mode is RoundingMode.STOCHASTIC:
        if rng is None:
            rng = np.random.default_rng(0)
        floor = np.floor(magnitudes)
        frac = magnitudes - floor
        return floor + (rng.random(magnitudes.shape) < frac)
    raise ValueError(f"unhandled rounding mode {mode}")
