"""Vanilla Block Floating Point (BFP) quantisation.

A BFP block shares a single exponent, chosen as the *maximum* element exponent
of the block (Fig. 2(c) of the paper).  Every mantissa is right-shifted until
it is expressed relative to that exponent and truncated/rounded to ``m`` bits,
after which a block of floating point values becomes

    ``2**E_max * [(-1)**s_0 * m'_0, ..., (-1)**s_{N-1} * m'_{N-1}]``

The quantisation step of every element is therefore ``2**(E_max - (m - 1))``:
large values keep most of their precision, but small and moderate values are
shifted far to the right and lose theirs — the weakness BBFP addresses.

The paper denotes a BFP format with an ``m``-bit mantissa as ``BFPm``
(e.g. BFP4, BFP6, BFP8) and fixes the shared exponent width at 5 bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blocking import BlockLayout, from_blocks, to_blocks
from repro.core.exponent_selection import ExponentStrategy, select_shared_exponent
from repro.core.floatspec import exponent_of
from repro.core.rounding import RoundingMode, round_magnitudes
from repro.core.serializable import SerializableConfig

__all__ = ["BFPConfig", "BFPTensor", "quantize_bfp", "bfp_quantize_dequantize"]


@dataclass(frozen=True)
class BFPConfig(SerializableConfig):
    """Configuration of a BFP format.

    Parameters
    ----------
    mantissa_bits:
        Magnitude bits per element (the paper's ``m`` in BFPm); the sign is
        stored separately, so BFP4 stores a 4-bit magnitude plus 1 sign bit.
    block_size:
        Number of elements sharing one exponent (32 in the paper).
    exponent_bits:
        Width of the shared exponent field (fixed to 5 in the paper).
    exponent_strategy:
        Shared-exponent rule; vanilla BFP uses ``MAX``.  Exposed so ablations
        can study non-standard alignments with a plain BFP mantissa.
    rounding:
        Mantissa rounding mode; round-to-nearest by default (the assumption
        behind the Eq. 8 error model).  Truncation and stochastic rounding
        are available for the encoder-cost ablations.
    """

    mantissa_bits: int
    block_size: int = 32
    exponent_bits: int = 5
    exponent_strategy: ExponentStrategy = ExponentStrategy.MAX
    rounding: RoundingMode = RoundingMode.NEAREST

    def __post_init__(self):
        if self.mantissa_bits < 1:
            raise ValueError(f"mantissa_bits must be >= 1, got {self.mantissa_bits}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.exponent_bits < 2:
            raise ValueError(f"exponent_bits must be >= 2, got {self.exponent_bits}")

    @property
    def name(self) -> str:
        return f"BFP{self.mantissa_bits}"

    @property
    def max_mantissa_level(self) -> int:
        """Largest stored magnitude code, ``2**m - 1``."""
        return (1 << self.mantissa_bits) - 1

    @property
    def exponent_min(self) -> int:
        return -(1 << (self.exponent_bits - 1)) + 1

    @property
    def exponent_max(self) -> int:
        return 1 << (self.exponent_bits - 1)

    def equivalent_bit_width(self) -> float:
        """Average storage bits per element (Table I "Equivalent Bit-Width").

        ``m`` magnitude bits + 1 sign bit + the shared exponent amortised over
        the block.
        """
        return self.mantissa_bits + 1 + self.exponent_bits / self.block_size

    def memory_efficiency(self, reference_bits: float = 16.0) -> float:
        """Memory density improvement relative to FP16 (Table I "Mem Eff.")."""
        return reference_bits / self.equivalent_bit_width()

    def mantissa_range(self) -> tuple:
        """Smallest/largest representable mantissa magnitude relative to ``2**E_shared``.

        For BFP4 this is ``(0.125, 1.875)`` matching Fig. 2(b).
        """
        step = 2.0 ** (-(self.mantissa_bits - 1))
        return step, self.max_mantissa_level * step


@dataclass
class BFPTensor:
    """A tensor quantised to BFP, stored in hardware-faithful fields.

    Attributes
    ----------
    config:
        The :class:`BFPConfig` used for quantisation.
    signs:
        ``+/-1`` per element, blocked shape ``(..., num_blocks, block_size)``.
    mantissas:
        Integer magnitude codes in ``[0, 2**m - 1]``, same shape as ``signs``.
    shared_exponents:
        Integer shared exponent per block, shape ``(..., num_blocks)``.
    layout:
        Blocking metadata used to restore the original tensor shape.
    """

    config: BFPConfig
    signs: np.ndarray
    mantissas: np.ndarray
    shared_exponents: np.ndarray
    layout: BlockLayout = field(repr=False)

    @property
    def block_values(self) -> np.ndarray:
        """Real values of each block element (still in blocked layout)."""
        step = np.exp2(
            self.shared_exponents[..., None].astype(np.float64) - (self.config.mantissa_bits - 1)
        )
        return self.signs * self.mantissas.astype(np.float64) * step

    def dequantize(self) -> np.ndarray:
        """Reconstruct a dense float tensor in the original shape."""
        return from_blocks(self.block_values, self.layout)

    def memory_bits(self) -> int:
        """Total storage footprint in bits (mantissas + signs + shared exponents)."""
        elements = int(np.prod(self.mantissas.shape))
        blocks = int(np.prod(self.shared_exponents.shape))
        return elements * (self.config.mantissa_bits + 1) + blocks * self.config.exponent_bits


def quantize_bfp(x: np.ndarray, config: BFPConfig, axis: int = -1,
                 rng: np.random.Generator = None) -> BFPTensor:
    """Quantise ``x`` to BFP along ``axis``.

    Round-to-nearest is used for the mantissa by default, matching the error
    model of Section III-B (Eq. 8 assumes round-to-nearest); other modes can
    be selected through ``config.rounding`` (``rng`` only matters for
    stochastic rounding).
    """
    blocks, layout = to_blocks(x, config.block_size, axis=axis)
    exponents = exponent_of(blocks)
    shared = select_shared_exponent(
        exponents,
        config.exponent_strategy,
        config.mantissa_bits,
        overlap_bits=0,
        exponent_min=config.exponent_min,
        exponent_max=config.exponent_max,
    )
    step = np.exp2(shared[..., None].astype(np.float64) - (config.mantissa_bits - 1))
    signs = np.where(blocks < 0, -1.0, 1.0)
    codes = round_magnitudes(np.abs(blocks) / step, config.rounding, rng=rng)
    codes = np.clip(codes, 0, config.max_mantissa_level).astype(np.int64)
    return BFPTensor(
        config=config,
        signs=signs,
        mantissas=codes,
        shared_exponents=shared,
        layout=layout,
    )


def bfp_quantize_dequantize(x: np.ndarray, config: BFPConfig, axis: int = -1,
                            rng: np.random.Generator = None) -> np.ndarray:
    """Quantise then immediately dequantise (the "fake quantisation" used for accuracy studies)."""
    return quantize_bfp(x, config, axis=axis, rng=rng).dequantize()
