"""Microscaling (MX) block formats — OCP-style BFP with minifloat elements.

The paper compares BBFP against vanilla BFP and against outlier-aware integer
schemes.  A third family that has become the de-facto industry block format is
*Microscaling* (MXFP4 / MXFP6 / MXFP8): a block of (usually 32) elements shares
one power-of-two scale, and each element is stored as a tiny *floating point*
number (E2M1, E2M3/E3M2, E4M3) instead of a fixed point mantissa.  Because
every element keeps a private micro-exponent, MX degrades more gracefully than
fixed point BFP for moderate values — the same weakness of BFP that BBFP
attacks with its flag bit — which makes MX the natural extra comparator for
the accuracy/efficiency ablations in this reproduction.

The scale is chosen the OCP way: the largest power of two such that the block
maximum maps onto the element format's largest binade,

    ``S = 2**(floor(log2(max|x|)) - e_max(element))``

Elements are then rounded to the nearest representable element value and the
block is stored as ``S * [element_0, ..., element_{N-1}]``.

This module mirrors the :mod:`repro.core.blockfp` API so MX formats can be
dropped into every experiment driver: ``MXConfig``, ``MXTensor``,
``quantize_mx`` and ``mx_quantize_dequantize``, plus the canonical
``MXFP4 / MXFP6_E2M3 / MXFP6_E3M2 / MXFP8`` configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blocking import BlockLayout, from_blocks, to_blocks
from repro.core.floatspec import FP8_E4M3, FloatSpec
from repro.core.fp_formats import minifloat_quantize_dequantize
from repro.core.serializable import SerializableConfig

__all__ = [
    "MXConfig",
    "MXTensor",
    "quantize_mx",
    "mx_quantize_dequantize",
    "MXFP4",
    "MXFP6_E2M3",
    "MXFP6_E3M2",
    "MXFP8",
]

#: Element formats referenced by the OCP Microscaling specification that are
#: not already defined in :mod:`repro.core.floatspec`.
FP6_E2M3 = FloatSpec("FP6_E2M3", exponent_bits=2, mantissa_bits=3)
FP6_E3M2 = FloatSpec("FP6_E3M2", exponent_bits=3, mantissa_bits=2)


@dataclass(frozen=True)
class MXConfig(SerializableConfig):
    """Configuration of a microscaling block format.

    Parameters
    ----------
    element:
        The per-element minifloat :class:`~repro.core.floatspec.FloatSpec`
        (E2M1 for MXFP4, E2M3/E3M2 for MXFP6, E4M3 for MXFP8).
    block_size:
        Elements per shared scale (32 in the OCP specification and in this
        repository's BFP/BBFP configurations, so comparisons are like-for-like).
    scale_bits:
        Width of the shared power-of-two scale (8 in the OCP specification —
        an E8M0 exponent).
    name:
        Display name; derived from the element format when omitted.  Cosmetic
        only — two configurations with the same element/block/scale are equal
        regardless of how they are labelled.
    """

    element: FloatSpec
    block_size: int = 32
    scale_bits: int = 8
    name: str = field(default="", compare=False)

    def __post_init__(self):
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.scale_bits < 2:
            raise ValueError(f"scale_bits must be >= 2, got {self.scale_bits}")
        if not self.name:
            object.__setattr__(
                self, "name", f"MXFP{self.element.total_bits}({self.element.name})"
            )

    @property
    def element_bits(self) -> int:
        """Stored bits per element (sign + exponent + mantissa of the element format)."""
        return self.element.total_bits

    @property
    def scale_min(self) -> int:
        return -(1 << (self.scale_bits - 1)) + 1

    @property
    def scale_max(self) -> int:
        return (1 << (self.scale_bits - 1)) - 1

    def equivalent_bit_width(self) -> float:
        """Average storage bits per element (directly comparable with Table I)."""
        return self.element_bits + self.scale_bits / self.block_size

    def memory_efficiency(self, reference_bits: float = 16.0) -> float:
        """Memory density improvement relative to FP16 (Table I "Mem Eff.")."""
        return reference_bits / self.equivalent_bit_width()

    def quantize_dequantize(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Fake-quantise ``x`` (hook used by :class:`repro.llm.inference.QuantizationScheme`)."""
        return mx_quantize_dequantize(x, self, axis=axis)


@dataclass
class MXTensor:
    """A tensor quantised to an MX format.

    Attributes
    ----------
    config:
        The :class:`MXConfig` used for quantisation.
    elements:
        Dequantised element values *before* applying the shared scale, blocked
        shape ``(..., num_blocks, block_size)``; every entry is exactly
        representable in ``config.element``.
    scale_exponents:
        Integer power-of-two scale per block, shape ``(..., num_blocks)``.
    layout:
        Blocking metadata used to restore the original tensor shape.
    """

    config: MXConfig
    elements: np.ndarray
    scale_exponents: np.ndarray
    layout: BlockLayout = field(repr=False)

    @property
    def block_values(self) -> np.ndarray:
        """Real values of each block element (still in blocked layout)."""
        scale = np.exp2(self.scale_exponents[..., None].astype(np.float64))
        return self.elements * scale

    def dequantize(self) -> np.ndarray:
        """Reconstruct a dense float tensor in the original shape."""
        return from_blocks(self.block_values, self.layout)

    def memory_bits(self) -> int:
        """Total storage footprint in bits (elements + shared scales)."""
        num_elements = int(np.prod(self.elements.shape))
        num_blocks = int(np.prod(self.scale_exponents.shape))
        return num_elements * self.config.element_bits + num_blocks * self.config.scale_bits


def quantize_mx(x: np.ndarray, config: MXConfig, axis: int = -1) -> MXTensor:
    """Quantise ``x`` to the MX format ``config`` along ``axis``.

    The shared scale of each block maps the block maximum onto the largest
    binade of the element format; elements are divided by the scale and
    rounded to the nearest representable element value (saturating at the
    element maximum, flushing below the smallest subnormal to zero).
    """
    blocks, layout = to_blocks(x, config.block_size, axis=axis)
    absmax = np.max(np.abs(blocks), axis=-1)
    # floor(log2(absmax)); all-zero blocks get the smallest scale.
    max_exp = np.floor(np.log2(np.where(absmax > 0, absmax, 1.0)))
    scale_exp = max_exp.astype(np.int64) - config.element.max_exponent
    scale_exp = np.where(absmax > 0, scale_exp, config.scale_min)
    scale_exp = np.clip(scale_exp, config.scale_min, config.scale_max)

    scale = np.exp2(scale_exp[..., None].astype(np.float64))
    elements = minifloat_quantize_dequantize(blocks / scale, config.element)
    return MXTensor(config=config, elements=elements, scale_exponents=scale_exp, layout=layout)


def mx_quantize_dequantize(x: np.ndarray, config: MXConfig, axis: int = -1) -> np.ndarray:
    """Quantise then immediately dequantise (fake quantisation for accuracy studies)."""
    return quantize_mx(x, config, axis=axis).dequantize()


#: The canonical OCP Microscaling configurations (block size 32, E8M0 scale).
MXFP4 = MXConfig(FloatSpec("FP4_E2M1", 2, 1), name="MXFP4")
MXFP6_E2M3 = MXConfig(FP6_E2M3, name="MXFP6(E2M3)")
MXFP6_E3M2 = MXConfig(FP6_E3M2, name="MXFP6(E3M2)")
MXFP8 = MXConfig(FP8_E4M3, name="MXFP8")
