"""Round-trip serialisation mixin shared by every format configuration.

Every ``*Config`` dataclass in :mod:`repro.core` (and the registrable baseline
configs) inherits :class:`SerializableConfig`, which gives it three things:

``to_dict()``
    A JSON-safe ``{"family": ..., **fields}`` dictionary (enums become their
    string values, nested configs become nested dictionaries).  This is what
    experiment manifests and sweep configurations persist.

``from_dict(payload)``
    The inverse; a classmethod so ``BBFPConfig.from_dict(d)`` type-checks the
    result, while ``SerializableConfig.from_dict(d)`` accepts any family.

``spec``
    The canonical spec string of the configuration under the
    :mod:`repro.quant` grammar (e.g. ``"BBFP(4,2)"``, ``"int8@pc"``), i.e.
    ``repro.quant.parse_spec(config.spec) == config`` for every configuration
    the grammar can express.  Fields outside the grammar (custom rounding
    modes, exponent strategies) are carried by ``to_dict`` instead.

The heavy lifting lives in :mod:`repro.quant.serialization` and
:mod:`repro.quant.registry`; the imports are deferred so :mod:`repro.core`
stays importable on its own and no import cycle forms (``repro.quant``
imports the core modules at module level).
"""

from __future__ import annotations

__all__ = ["SerializableConfig"]


class SerializableConfig:
    """Mixin adding ``to_dict`` / ``from_dict`` / ``spec`` to a format config."""

    def to_dict(self) -> dict:
        """JSON-safe dictionary representation (``{"family": ..., **fields}``)."""
        from repro.quant.serialization import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict):
        """Rebuild a configuration from :meth:`to_dict` output.

        Called on a concrete config class the result is type-checked; called
        on :class:`SerializableConfig` itself any registered family is
        accepted.
        """
        from repro.quant.serialization import config_from_dict

        config = config_from_dict(payload)
        if cls is not SerializableConfig and not isinstance(config, cls):
            raise TypeError(
                f"payload describes a {type(config).__name__}, not a {cls.__name__}"
            )
        return config

    @property
    def spec(self) -> str:
        """Canonical spec string under the :mod:`repro.quant` grammar."""
        from repro.quant.registry import spec_of

        return spec_of(self)
