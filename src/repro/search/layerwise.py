"""Layer-kind-wise quantisation schemes.

The inference path names every linear layer ``blocks.<i>.<module>.<kind>``
(kinds: ``q_proj``, ``k_proj``, ``v_proj``, ``out_proj``, ``gate_proj``,
``up_proj``, ``down_proj``, ``fc1``, ``fc2``, ``lm_head``).  A layer-wise
scheme maps each *kind* to its own number format and falls back to a default
format for unmapped kinds — the building block of the mixed-precision search
and a useful tool on its own (e.g. "keep ``down_proj`` at BBFP(6,3), quantise
everything else to BBFP(4,2)").
"""

from __future__ import annotations

from repro.llm.inference import QuantizationScheme

__all__ = ["build_layerwise_scheme", "layer_kind_of"]


def layer_kind_of(layer_name: str) -> str:
    """Extract the layer kind from a fully qualified linear-layer name."""
    return layer_name.rsplit(".", 1)[-1]


def _as_scheme(format_or_scheme) -> QuantizationScheme:
    if isinstance(format_or_scheme, QuantizationScheme):
        return format_or_scheme
    if format_or_scheme is None:
        return QuantizationScheme.fp_reference()
    return QuantizationScheme.from_format(format_or_scheme)


def build_layerwise_scheme(assignment: dict, default=None, name: str = None,
                           quantize_lm_head: bool = True) -> QuantizationScheme:
    """Build a scheme that applies a different format to each linear-layer kind.

    Parameters
    ----------
    assignment:
        ``{layer_kind: format}`` where each format is anything accepted by
        :meth:`QuantizationScheme.from_format` — a spec string
        (``"BBFP(4,2)"``), any registered format config or
        :class:`repro.quant.Quantizer` — or an already-built
        :class:`QuantizationScheme`.
    default:
        Format used for kinds missing from ``assignment``; ``None`` keeps them
        unquantised (the FP reference).
    name:
        Display name; derived from the assignment when omitted.
    quantize_lm_head:
        Forwarded to the resulting scheme.

    Returns
    -------
    QuantizationScheme
        A scheme whose weight/activation functions dispatch on the layer kind.
    """
    schemes = {kind: _as_scheme(fmt) for kind, fmt in assignment.items()}
    default_scheme = _as_scheme(default)

    if name is None:
        parts = ", ".join(f"{kind}={scheme.name}" for kind, scheme in sorted(schemes.items()))
        name = f"Layerwise({parts})"

    def weight_fn(layer_name, weight):
        scheme = schemes.get(layer_kind_of(layer_name), default_scheme)
        return scheme.weight_fn(layer_name, weight)

    def activation_fn(layer_name, activation):
        scheme = schemes.get(layer_kind_of(layer_name), default_scheme)
        return scheme.activation_fn(layer_name, activation)

    return QuantizationScheme(
        name=name,
        weight_fn=weight_fn,
        activation_fn=activation_fn,
        quantize_lm_head=quantize_lm_head,
    )
