"""Greedy per-layer-kind mixed-precision search over the BBFP family.

The search answers the deployment question the paper's global sweeps leave
open: *given an accuracy budget, which BBFP configuration should each layer
kind get?*  It proceeds in three steps:

1. **Sensitivity profiling** — evaluate perplexity with exactly one layer
   kind quantised to each candidate format (everything else in FP); the
   resulting deltas mirror the per-layer MSE study of Fig. 3 but in the
   end-to-end metric that matters.
2. **Greedy assignment** — start from the most accurate candidate everywhere
   and repeatedly downgrade the (kind, format) move with the best
   footprint-saved per perplexity-lost ratio, as long as the *predicted*
   perplexity increase (sum of single-kind deltas) stays within the budget.
3. **Validation** — evaluate the final assignment exactly; if interactions
   between kinds push it over budget, the most recent moves are reverted
   until the measured perplexity fits.

The cost metric is the weight-memory footprint (parameters x equivalent bits
per element), which is also what drives DRAM energy in Fig. 9; the PE-area
implications of each assignment can be read off Table III since the widest
assigned format dictates the PE datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel, QuantizationScheme
from repro.llm.perplexity import EvalConfig, evaluate_perplexity
from repro.quant import get_quantizer
from repro.search.layerwise import build_layerwise_scheme, layer_kind_of

__all__ = [
    "MixedPrecisionResult",
    "layer_kind_parameter_counts",
    "sensitivity_profile",
    "greedy_mixed_precision_search",
]


def layer_kind_parameter_counts(model: InferenceModel) -> dict:
    """Number of weight parameters per linear-layer kind (used as footprint weights)."""
    counts = {}
    for key, tensor in model.state.items():
        if not key.endswith(".weight"):
            continue
        layer_name = key[: -len(".weight")]
        kind = layer_kind_of(layer_name)
        if kind in ("token_embedding", "position_embedding"):
            continue
        counts[kind] = counts.get(kind, 0) + int(tensor.size)
    return counts


def _footprint_bits(assignment: dict, parameter_counts: dict) -> float:
    """Total weight footprint (bits) of an assignment."""
    total = 0.0
    for kind, fmt in assignment.items():
        total += parameter_counts.get(kind, 0) * get_quantizer(fmt).bits_per_element()
    return total


def _evaluate(model: InferenceModel, corpus: SyntheticCorpus, scheme: QuantizationScheme,
              eval_config: EvalConfig) -> float:
    original = model.scheme
    model.set_scheme(scheme)
    try:
        return float(evaluate_perplexity(model, corpus, eval_config))
    finally:
        model.set_scheme(original)


def sensitivity_profile(model: InferenceModel, corpus: SyntheticCorpus, candidates,
                        kinds=None, eval_config: EvalConfig = None) -> dict:
    """Perplexity with exactly one layer kind quantised, for every (kind, candidate).

    ``candidates`` may mix spec strings, format configs and quantizers —
    everything resolves through the :mod:`repro.quant` registry.  Returns
    ``{kind: {candidate_name: perplexity}}`` plus the FP reference under the
    key ``"__reference__"``.
    """
    eval_config = eval_config or EvalConfig()
    quantizers = [get_quantizer(candidate) for candidate in candidates]
    if kinds is None:
        kinds = sorted(layer_kind_parameter_counts(model))
    reference = _evaluate(model, corpus, QuantizationScheme.fp_reference(), eval_config)
    profile = {"__reference__": reference}
    for kind in kinds:
        profile[kind] = {}
        for quantizer in quantizers:
            scheme = build_layerwise_scheme({kind: quantizer}, default=None,
                                            name=f"only-{kind}-{quantizer.name}")
            profile[kind][quantizer.name] = _evaluate(model, corpus, scheme, eval_config)
    return profile


@dataclass
class MixedPrecisionResult:
    """Outcome of the greedy mixed-precision search."""

    assignment: dict
    perplexity: float
    reference_perplexity: float
    footprint_bits: float
    uniform_footprint_bits: float
    scheme: QuantizationScheme
    history: list = field(default_factory=list)

    @property
    def footprint_saving(self) -> float:
        """Fraction of the uniform-widest-format footprint saved."""
        if self.uniform_footprint_bits == 0:
            return 0.0
        return 1.0 - self.footprint_bits / self.uniform_footprint_bits

    @property
    def perplexity_overhead(self) -> float:
        """Relative perplexity increase over the FP reference."""
        if self.reference_perplexity == 0:
            return 0.0
        return self.perplexity / self.reference_perplexity - 1.0

    def as_rows(self) -> list:
        return [
            {"kind": kind, "format": get_quantizer(fmt).name,
             "bits_per_element": get_quantizer(fmt).bits_per_element()}
            for kind, fmt in sorted(self.assignment.items())
        ]


def greedy_mixed_precision_search(model: InferenceModel, corpus: SyntheticCorpus, candidates,
                                  ppl_budget_ratio: float = 1.05, kinds=None,
                                  eval_config: EvalConfig = None) -> MixedPrecisionResult:
    """Assign one candidate format per layer kind within a perplexity budget.

    Parameters
    ----------
    model, corpus:
        The model under quantisation and the held-out corpus for evaluation.
    candidates:
        Iterable of formats — spec strings (``"BBFP(6,3)"``), format configs
        or quantizers, resolved through the :mod:`repro.quant` registry
        (typically BBFP configs of decreasing width); the *first* candidate
        is treated as the most accurate one and is the starting assignment
        for every kind.
    ppl_budget_ratio:
        The final perplexity must stay below
        ``reference_perplexity * ppl_budget_ratio``.
    kinds:
        Layer kinds to search over; all linear kinds of the model by default.
    eval_config:
        Evaluation configuration (batch sizes / lengths) for all measurements.
    """
    quantizers = [get_quantizer(candidate) for candidate in candidates]
    if not quantizers:
        raise ValueError("need at least one candidate format")
    if ppl_budget_ratio < 1.0:
        raise ValueError("ppl_budget_ratio must be >= 1.0")
    eval_config = eval_config or EvalConfig()
    parameter_counts = layer_kind_parameter_counts(model)
    if kinds is None:
        kinds = sorted(parameter_counts)
    kinds = [kind for kind in kinds if parameter_counts.get(kind, 0) > 0]

    profile = sensitivity_profile(model, corpus, quantizers, kinds=kinds, eval_config=eval_config)
    reference = profile["__reference__"]
    budget = reference * ppl_budget_ratio

    assignment = {kind: quantizers[0] for kind in kinds}
    predicted_overhead = sum(
        max(0.0, profile[kind][quantizers[0].name] - reference) for kind in kinds
    )
    history = []

    # Candidate downgrades: move a kind from its current format to any cheaper one.
    improved = True
    while improved:
        improved = False
        best_move = None
        for kind in kinds:
            current = assignment[kind]
            current_delta = max(0.0, profile[kind][current.name] - reference)
            for candidate in quantizers:
                if candidate.bits_per_element() >= current.bits_per_element():
                    continue
                extra_delta = max(0.0, profile[kind][candidate.name] - reference) - current_delta
                saving = parameter_counts[kind] * (
                    current.bits_per_element() - candidate.bits_per_element()
                )
                if predicted_overhead + extra_delta > budget - reference:
                    continue
                score = saving / (extra_delta + 1e-9)
                if best_move is None or score > best_move[0]:
                    best_move = (score, kind, candidate, extra_delta, saving)
        if best_move is not None:
            _, kind, candidate, extra_delta, saving = best_move
            assignment[kind] = candidate
            predicted_overhead += extra_delta
            history.append({"kind": kind, "format": candidate.name, "saving_bits": saving,
                            "predicted_extra_ppl": extra_delta})
            improved = True

    # Validate the interaction effects with an exact evaluation; back out the
    # most aggressive moves until the measured perplexity fits the budget.
    def build(assignment_now):
        return build_layerwise_scheme(dict(assignment_now), default=None, name="MixedPrecision")

    measured = _evaluate(model, corpus, build(assignment), eval_config)
    while measured > budget and history:
        reverted = history.pop()
        assignment[reverted["kind"]] = quantizers[0]
        measured = _evaluate(model, corpus, build(assignment), eval_config)

    uniform_footprint = sum(
        parameter_counts[kind] * quantizers[0].bits_per_element() for kind in kinds
    )
    return MixedPrecisionResult(
        assignment={kind: quantizer.config for kind, quantizer in assignment.items()},
        perplexity=measured,
        reference_perplexity=reference,
        footprint_bits=_footprint_bits(assignment, parameter_counts),
        uniform_footprint_bits=uniform_footprint,
        scheme=build(assignment),
        history=history,
    )
