"""Mixed-precision configuration search on top of the BBFP format family.

The paper fixes one BBFP configuration for every linear layer of the model
(Table II evaluates each configuration globally).  Its own sensitivity data —
different layer kinds have very different outlier profiles (Fig. 3) and
different models tolerate different widths (Fig. 4 / Algorithm 1) — suggests
the natural extension implemented here: assign a *different* BBFP(m, o) to
each layer kind so that the cheap kinds drop to 3–4 bits while the sensitive
ones keep 6, meeting an accuracy budget at a smaller weight footprint and PE
cost than any single global configuration.

* :mod:`repro.search.layerwise` — a :class:`~repro.llm.inference.QuantizationScheme`
  that dispatches a different number format per linear-layer kind;
* :mod:`repro.search.mixed_precision` — per-kind sensitivity profiling and a
  greedy budget-constrained assignment search.
"""

from repro.search.layerwise import build_layerwise_scheme
from repro.search.mixed_precision import (
    MixedPrecisionResult,
    greedy_mixed_precision_search,
    layer_kind_parameter_counts,
    sensitivity_profile,
)

__all__ = [
    "build_layerwise_scheme",
    "MixedPrecisionResult",
    "greedy_mixed_precision_search",
    "layer_kind_parameter_counts",
    "sensitivity_profile",
]
