"""Function-preserving activation-outlier injection.

The paper's motivation (Fig. 1(a)) and its comparison against outlier-aware
accelerators (Fig. 8) both hinge on the activation outliers of real LLMs:
Llama-family models have more (and larger) outlier channels than OPT-family
models, which is why fixed-proportion outlier methods (Olive, Oltron) behave
differently on the two families.

Freshly-trained miniature models do not naturally develop such extreme
channels, so this module *injects* them with an exactly function-preserving
transformation: for a pre-norm block, scaling channel ``c`` of the norm's gain
(and bias) by ``s`` while dividing row ``c`` of every weight matrix that
consumes the normed output by ``s`` leaves the network function unchanged but
makes the *activation tensor seen by the quantiser* contain genuine outliers
— precisely the situation weight–activation quantisation faces on real LLMs.
(This is the inverse of the SmoothQuant migration.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.config import ModelConfig

__all__ = ["OutlierProfile", "LLAMA_PROFILE", "OPT_PROFILE", "inject_outliers"]


@dataclass(frozen=True)
class OutlierProfile:
    """How many channels become outliers and how large they are.

    Parameters
    ----------
    channel_fraction:
        Fraction of d_model channels turned into outlier channels per norm.
    scale_min, scale_max:
        The multiplicative boost applied to chosen channels is drawn uniformly
        from ``[scale_min, scale_max]``.
    seed:
        Base seed of the channel/scale selection.
    """

    channel_fraction: float
    scale_min: float
    scale_max: float
    seed: int = 7

    def __post_init__(self):
        if not 0.0 <= self.channel_fraction <= 0.5:
            raise ValueError("channel_fraction must lie in [0, 0.5]")
        if not 1.0 <= self.scale_min <= self.scale_max:
            raise ValueError("need 1 <= scale_min <= scale_max")


#: Llama-like profile: more outlier channels with larger magnitudes (Fig. 8
#: discussion: "models contain varying proportions and magnitudes of outliers
#: ... outlier-aware methods perform poorly on the Llama").
LLAMA_PROFILE = OutlierProfile(channel_fraction=0.06, scale_min=14.0, scale_max=40.0)

#: OPT-like profile: fewer, milder outlier channels.
OPT_PROFILE = OutlierProfile(channel_fraction=0.03, scale_min=6.0, scale_max=14.0)


def _scale_channels(state: dict, gain_key: str, consumer_weight_keys, channels, scales,
                    bias_key: str = None):
    """Scale norm output channels and compensate in the consuming weights."""
    gain = state[gain_key]
    gain[channels] *= scales
    if bias_key is not None and bias_key in state:
        state[bias_key][channels] *= scales
    for weight_key in consumer_weight_keys:
        if weight_key in state:
            state[weight_key][channels, :] /= scales[:, None]


def inject_outliers(config: ModelConfig, state_dict: dict, profile: OutlierProfile) -> dict:
    """Return a copy of ``state_dict`` with outlier channels injected.

    Every pre-norm (attention norm, MLP norm and the final norm) receives a
    random subset of boosted channels; the weights that consume the normed
    activations are rescaled so the model output is bit-for-bit unaffected in
    exact arithmetic.
    """
    state = {k: np.array(v, dtype=np.float64, copy=True) for k, v in state_dict.items()}
    rng = np.random.default_rng(profile.seed + config.seed)
    num_channels = max(1, int(round(profile.channel_fraction * config.d_model)))
    if profile.channel_fraction == 0.0:
        return state

    def draw():
        channels = rng.choice(config.d_model, size=num_channels, replace=False)
        scales = rng.uniform(profile.scale_min, profile.scale_max, size=num_channels)
        return channels, scales

    for i in range(config.n_layers):
        channels, scales = draw()
        _scale_channels(
            state,
            gain_key=f"blocks.{i}.attn_norm.gain",
            bias_key=f"blocks.{i}.attn_norm.bias",
            consumer_weight_keys=[
                f"blocks.{i}.attention.q_proj.weight",
                f"blocks.{i}.attention.k_proj.weight",
                f"blocks.{i}.attention.v_proj.weight",
            ],
            channels=channels,
            scales=scales,
        )
        channels, scales = draw()
        if config.uses_gated_mlp:
            consumers = [f"blocks.{i}.mlp.gate_proj.weight", f"blocks.{i}.mlp.up_proj.weight"]
        else:
            consumers = [f"blocks.{i}.mlp.fc1.weight"]
        _scale_channels(
            state,
            gain_key=f"blocks.{i}.mlp_norm.gain",
            bias_key=f"blocks.{i}.mlp_norm.bias",
            consumer_weight_keys=consumers,
            channels=channels,
            scales=scales,
        )

    channels, scales = draw()
    _scale_channels(
        state,
        gain_key="final_norm.gain",
        bias_key="final_norm.bias",
        consumer_weight_keys=["lm_head.weight"],
        channels=channels,
        scales=scales,
    )
    return state
