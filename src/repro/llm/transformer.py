"""Decoder-only transformer language model (training path, autograd)."""

from __future__ import annotations

import numpy as np

from repro.llm.attention import CausalSelfAttention
from repro.llm.autograd import Tensor, softmax_cross_entropy
from repro.llm.config import ModelConfig
from repro.llm.layers import Embedding, LayerNorm, Linear, Module, ModuleList, RMSNorm
from repro.llm.mlp import build_mlp

__all__ = ["DecoderBlock", "TransformerLM"]


def _build_norm(config: ModelConfig) -> Module:
    if config.norm == "rmsnorm":
        return RMSNorm(config.d_model)
    return LayerNorm(config.d_model)


class DecoderBlock(Module):
    """Pre-norm decoder block: attention + MLP, each with a residual connection."""

    def __init__(self, config: ModelConfig, rng=None):
        self.attn_norm = _build_norm(config)
        self.attention = CausalSelfAttention(config, rng=rng)
        self.mlp_norm = _build_norm(config)
        self.mlp = build_mlp(config, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.attn_norm(x))
        x = x + self.mlp(self.mlp_norm(x))
        return x


class TransformerLM(Module):
    """A small decoder-only language model.

    This is the FP "checkpoint" stand-in for the paper's Llama/OPT models:
    it is trained with :mod:`repro.llm.training` on the synthetic corpus, and
    its weights are then exported to the quantisation-aware inference path
    (:mod:`repro.llm.inference`) for every perplexity experiment.
    """

    def __init__(self, config: ModelConfig):
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng=rng)
        self.blocks = ModuleList(DecoderBlock(config, rng=rng) for _ in range(config.n_layers))
        self.final_norm = _build_norm(config)
        self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Return logits of shape ``(batch, seq, vocab)`` for integer ``tokens``."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        _, seq_len = tokens.shape
        if seq_len > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.arange(seq_len)
        x = self.token_embedding(tokens) + self.position_embedding(positions)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x)
        return self.lm_head(x)

    def loss(self, tokens: np.ndarray) -> Tensor:
        """Next-token cross-entropy over a batch of token sequences."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        logits = self.forward(tokens[:, :-1])
        targets = tokens[:, 1:]
        return softmax_cross_entropy(logits, targets)
