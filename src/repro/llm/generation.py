"""Auto-regressive text generation over the quantisation-aware inference path.

Perplexity (Table II / IV) measures quantisation damage in aggregate; sampling
actual continuations from a quantised model is the complementary check a user
performs before deploying a format — does the model still produce coherent
text at BBFP(4,2), or has the quantisation noise broken generation?  This
module provides greedy and temperature/top-k sampling on top of
:class:`repro.llm.inference.InferenceModel`, so any
:class:`~repro.llm.inference.QuantizationScheme` (BBFP, BFP, baselines,
layer-wise mixes) can be compared on the same prompt.

The decode loop is a thin single-sequence wrapper over the KV-cached
incremental path (:meth:`~repro.llm.inference.InferenceModel.forward_step` +
:class:`repro.serve.KVCache`): the prompt is prefilled once and each new
token costs one token's forward.  Only when the context outgrows the model's
positional window does the loop fall back to the historical full recompute
over the truncated context (a sliding window shifts every cached position, so
the cache cannot be reused there).  Multi-request serving lives in
:mod:`repro.serve`; the *hardware* cost of cached decode is modelled
separately by :mod:`repro.accelerator.generation`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel
from repro.llm.sampling import sample_token

__all__ = ["GenerationConfig", "generate_tokens", "generate_text", "sequence_log_likelihood"]


@dataclass(frozen=True)
class GenerationConfig:
    """Sampling parameters for auto-regressive generation.

    Parameters
    ----------
    max_new_tokens:
        Number of tokens appended to the prompt.
    temperature:
        Softmax temperature; ``0`` selects the argmax (greedy decoding).
    top_k:
        Restrict sampling to the ``top_k`` most likely tokens (``0`` keeps the
        full distribution).
    seed:
        Seed of the sampling generator (ignored for greedy decoding).
    """

    max_new_tokens: int = 64
    temperature: float = 0.0
    top_k: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.max_new_tokens < 0:
            raise ValueError("max_new_tokens must be >= 0")
        if self.temperature < 0:
            raise ValueError("temperature must be >= 0")
        if self.top_k < 0:
            raise ValueError("top_k must be >= 0")


def generate_tokens(model: InferenceModel, prompt_tokens,
                    config: GenerationConfig = None) -> np.ndarray:
    """Generate ``config.max_new_tokens`` continuation tokens after ``prompt_tokens``.

    While the context fits the positional window the continuation is decoded
    incrementally over a KV cache (prompt prefilled once, then one token per
    forward step).  Beyond the window the context is truncated to the
    ``max_seq_len - 1`` most recent tokens and recomputed in full each step,
    so arbitrarily long generations remain possible on the fixed-length
    positional embedding.

    Greedy decoding is token-identical to the historical full-recompute loop
    for the reference scheme and for schemes whose activation quantisers
    scale within one position (BBFP/BFP/MX blocked along the feature axis).
    A scheme with *per-tensor* activation scales (plain INT) sees each
    decode step's activations quantised on their own rather than alongside
    the whole context — the semantics a serving system actually has — so its
    tokens may differ slightly from a full recompute.

    Returns the full token sequence (prompt + continuation) as an int64 array.
    """
    # default built per call: a shared module-level dataclass instance would
    # leak between callers that introspect or compare configs
    config = config or GenerationConfig()
    prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64).ravel()
    if prompt_tokens.size == 0:
        raise ValueError("prompt_tokens must contain at least one token")
    if np.any(prompt_tokens < 0) or np.any(prompt_tokens >= model.config.vocab_size):
        raise ValueError("prompt contains token ids outside the model vocabulary")

    from repro.serve.kv_cache import KVCache  # serve layers above llm; import lazily

    rng = np.random.default_rng(config.seed)
    window = model.config.max_seq_len - 1
    tokens = list(prompt_tokens)
    cache = None
    for _ in range(config.max_new_tokens):
        if len(tokens) <= window:
            if cache is None:
                cache = KVCache(model.config, batch_size=1)
                new_tokens = np.array(tokens, dtype=np.int64)  # prefill the whole prefix
            else:
                new_tokens = np.array(tokens[-1:], dtype=np.int64)
            logits = model.forward_step(new_tokens[None, :], cache)[0, -1]
        else:
            # sliding window: every cached position would shift — full recompute
            context = np.array(tokens[-window:], dtype=np.int64)
            logits = model.forward(context[None, :])[0, -1]
        tokens.append(sample_token(logits, temperature=config.temperature,
                                   top_k=config.top_k, rng=rng))
    return np.array(tokens, dtype=np.int64)


def generate_text(model: InferenceModel, corpus: SyntheticCorpus, prompt: str,
                  config: GenerationConfig = None) -> str:
    """Generate a text continuation of ``prompt`` using the corpus tokenizer."""
    prompt_tokens = corpus.tokenizer.encode(prompt)
    tokens = generate_tokens(model, prompt_tokens, config)
    return corpus.tokenizer.decode(tokens)


def sequence_log_likelihood(model: InferenceModel, tokens) -> float:
    """Total log-likelihood (nats) the model assigns to a token sequence.

    Useful for comparing how plausible different schemes find the *same*
    continuation (e.g. one generated by the FP reference).
    """
    tokens = np.asarray(tokens, dtype=np.int64).ravel()
    if tokens.size < 2:
        raise ValueError("need at least two tokens to score a sequence")
    window = model.config.max_seq_len
    total = 0.0
    # Score in overlapping windows so sequences longer than max_seq_len work.
    position = 0
    while position + 1 < tokens.size:
        chunk = tokens[position : position + window]
        nll = model.negative_log_likelihood(chunk[None, :])
        total -= nll * (chunk.size - 1)
        position += window - 1
    return float(total)
