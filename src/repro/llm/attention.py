"""Causal self-attention block (training path, autograd)."""

from __future__ import annotations

import numpy as np

from repro.llm.autograd import Tensor
from repro.llm.config import ModelConfig
from repro.llm.layers import Linear, Module

__all__ = ["CausalSelfAttention", "causal_mask"]


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive causal mask: 0 on/below the diagonal, a large negative above it."""
    mask = np.triu(np.ones((seq_len, seq_len)), k=1)
    return mask * -1e9


class CausalSelfAttention(Module):
    """Multi-head causal self-attention.

    The four projections (Query, Key, Value, Proj) are exactly the linear
    layers the paper quantises (Fig. 3 sweeps activation error across
    Query / Key / Value / Proj / FC1 / FC2), and the softmax over attention
    scores is one of the two nonlinear operators handled by the BBFP
    nonlinear unit (Table IV, "Softmax only").
    """

    def __init__(self, config: ModelConfig, rng=None):
        rng = rng or np.random.default_rng()
        bias = config.use_bias
        self.config = config
        self.q_proj = Linear(config.d_model, config.d_model, bias=bias, rng=rng)
        self.k_proj = Linear(config.d_model, config.d_model, bias=bias, rng=rng)
        self.v_proj = Linear(config.d_model, config.d_model, bias=bias, rng=rng)
        self.out_proj = Linear(config.d_model, config.d_model, bias=bias, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq_len, d_model = x.shape
        heads = self.config.n_heads
        head_dim = self.config.head_dim

        def split_heads(tensor: Tensor) -> Tensor:
            return tensor.reshape(batch, seq_len, heads, head_dim).transpose(0, 2, 1, 3)

        q = split_heads(self.q_proj(x))
        k = split_heads(self.k_proj(x))
        v = split_heads(self.v_proj(x))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(head_dim))
        scores = scores + Tensor(causal_mask(seq_len))

        # Numerically-stable softmax composed from autograd primitives; the
        # subtracted max is treated as a constant, which leaves the gradient
        # unchanged.
        shifted = scores - Tensor(scores.data.max(axis=-1, keepdims=True))
        exp_scores = shifted.exp()
        attn = exp_scores * exp_scores.sum(axis=-1, keepdims=True) ** -1.0

        context = attn @ v
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq_len, d_model)
        return self.out_proj(context)
