"""Synthetic WikiText-like corpus.

WikiText-2 is not available offline, so the perplexity experiments run on a
deterministic synthetic corpus with the statistical properties that make
perplexity a meaningful metric:

* a Zipfian word-frequency distribution (a few very common words, a long tail);
* local structure (words are built from a small syllable inventory, sentences
  have bigram dependencies through a topic state), so a trained model can do
  substantially better than the unigram baseline;
* punctuation, digits and casing so the character vocabulary is realistic.

Everything is generated from a seed, so all experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.tokenizer import CharTokenizer

__all__ = ["CorpusConfig", "SyntheticCorpus", "generate_text"]

_SYLLABLES = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
    "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
    "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
    "ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
]


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of the synthetic corpus generator."""

    vocabulary_size: int = 400
    num_sentences: int = 3000
    mean_sentence_length: int = 9
    num_topics: int = 8
    zipf_exponent: float = 1.1
    seed: int = 2024
    valid_fraction: float = 0.1

    def __post_init__(self):
        if not 0.0 < self.valid_fraction < 1.0:
            raise ValueError("valid_fraction must lie in (0, 1)")
        if self.vocabulary_size < 10:
            raise ValueError("vocabulary_size must be at least 10")


def _build_words(rng: np.random.Generator, vocabulary_size: int) -> list:
    """Create a deterministic list of pronounceable pseudo-words."""
    words = []
    seen = set()
    while len(words) < vocabulary_size:
        length = rng.integers(1, 4)
        word = "".join(rng.choice(_SYLLABLES) for _ in range(length))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def generate_text(config: CorpusConfig) -> str:
    """Generate the full corpus text for ``config`` (deterministic)."""
    rng = np.random.default_rng(config.seed)
    words = _build_words(rng, config.vocabulary_size)

    # Zipfian global frequencies.
    ranks = np.arange(1, config.vocabulary_size + 1, dtype=np.float64)
    base_probs = ranks ** (-config.zipf_exponent)
    base_probs /= base_probs.sum()

    # Each topic re-weights a subset of the vocabulary, giving the corpus
    # longer-range structure that a small transformer can learn.
    topic_boosts = []
    for _ in range(config.num_topics):
        boost = np.ones(config.vocabulary_size)
        favoured = rng.choice(config.vocabulary_size, size=config.vocabulary_size // 10, replace=False)
        boost[favoured] = 12.0
        topic_probs = base_probs * boost
        topic_probs /= topic_probs.sum()
        topic_boosts.append(topic_probs)

    sentences = []
    topic = int(rng.integers(config.num_topics))
    for _ in range(config.num_sentences):
        if rng.random() < 0.2:
            topic = int(rng.integers(config.num_topics))
        probs = topic_boosts[topic]
        length = max(2, int(rng.poisson(config.mean_sentence_length)))
        word_ids = rng.choice(config.vocabulary_size, size=length, p=probs)
        tokens = [words[i] for i in word_ids]
        if rng.random() < 0.1:
            tokens.insert(int(rng.integers(len(tokens))), str(int(rng.integers(0, 1000))))
        sentence = " ".join(tokens)
        sentence = sentence[0].upper() + sentence[1:]
        terminator = "." if rng.random() < 0.85 else ("?" if rng.random() < 0.5 else "!")
        sentences.append(sentence + terminator)
    return " ".join(sentences) + "\n"


class SyntheticCorpus:
    """Tokenised corpus with train/validation splits and batch iteration."""

    def __init__(self, config: CorpusConfig = CorpusConfig()):
        self.config = config
        self.text = generate_text(config)
        self.tokenizer = CharTokenizer(self.text)
        tokens = self.tokenizer.encode(self.text)
        split = int(len(tokens) * (1.0 - config.valid_fraction))
        self.train_tokens = tokens[:split]
        self.valid_tokens = tokens[split:]

    @property
    def vocab_size(self) -> int:
        return self.tokenizer.vocab_size

    def _tokens(self, split: str) -> np.ndarray:
        if split == "train":
            return self.train_tokens
        if split == "valid":
            return self.valid_tokens
        raise ValueError(f"unknown split {split!r}; expected 'train' or 'valid'")

    def sample_batch(self, split: str, batch_size: int, seq_len: int, rng=None) -> np.ndarray:
        """Sample a ``(batch_size, seq_len + 1)`` batch of token windows."""
        rng = rng or np.random.default_rng()
        tokens = self._tokens(split)
        if len(tokens) <= seq_len + 1:
            raise ValueError(
                f"split {split!r} has only {len(tokens)} tokens; need more than {seq_len + 1}"
            )
        starts = rng.integers(0, len(tokens) - seq_len - 1, size=batch_size)
        return np.stack([tokens[s : s + seq_len + 1] for s in starts])

    def sequential_batches(self, split: str, batch_size: int, seq_len: int, max_batches=None):
        """Yield contiguous, non-overlapping evaluation batches (deterministic)."""
        tokens = self._tokens(split)
        window = seq_len + 1
        usable = (len(tokens) - 1) // window * window
        windows = [tokens[i : i + window] for i in range(0, usable, window)]
        batches_total = len(windows) // batch_size
        if max_batches is not None:
            batches_total = min(batches_total, max_batches)
        for b in range(batches_total):
            yield np.stack(windows[b * batch_size : (b + 1) * batch_size])
