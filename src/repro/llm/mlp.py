"""Feed-forward blocks: SwiGLU (Llama-style) and plain two-layer MLP (OPT-style)."""

from __future__ import annotations

import numpy as np

from repro.llm.autograd import Tensor
from repro.llm.config import ModelConfig
from repro.llm.layers import Linear, Module

__all__ = ["SwiGLUMLP", "FeedForwardMLP", "build_mlp"]


class SwiGLUMLP(Module):
    """Gated MLP: ``down( silu(gate(x)) * up(x) )``.

    The gate / up / down projections correspond to the "Up + Down + Gate"
    linear operators of Fig. 1(b), and the SiLU is the second nonlinear
    operator handled by the BBFP nonlinear unit (Table IV, "SILU only").
    """

    def __init__(self, config: ModelConfig, rng=None):
        rng = rng or np.random.default_rng()
        bias = config.use_bias
        self.gate_proj = Linear(config.d_model, config.d_ff, bias=bias, rng=rng)
        self.up_proj = Linear(config.d_model, config.d_ff, bias=bias, rng=rng)
        self.down_proj = Linear(config.d_ff, config.d_model, bias=bias, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.down_proj(self.gate_proj(x).silu() * self.up_proj(x))


class FeedForwardMLP(Module):
    """Plain two-layer MLP ``fc2(act(fc1(x)))`` used by the OPT-style models."""

    def __init__(self, config: ModelConfig, rng=None):
        rng = rng or np.random.default_rng()
        bias = config.use_bias
        self.fc1 = Linear(config.d_model, config.d_ff, bias=bias, rng=rng)
        self.fc2 = Linear(config.d_ff, config.d_model, bias=bias, rng=rng)
        self.activation = config.activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        if self.activation == "gelu":
            hidden = hidden.gelu()
        elif self.activation == "silu":
            hidden = hidden.silu()
        else:
            hidden = hidden.relu()
        return self.fc2(hidden)


def build_mlp(config: ModelConfig, rng=None) -> Module:
    """Instantiate the MLP variant matching ``config.arch``."""
    if config.uses_gated_mlp:
        return SwiGLUMLP(config, rng=rng)
    return FeedForwardMLP(config, rng=rng)
