"""A minimal reverse-mode automatic differentiation engine over numpy.

The paper's perplexity experiments need *trained* language models — random
weights would make every quantisation format look identical (uniform output
distribution).  Because no deep-learning framework is available offline, this
module implements the small subset of autodiff needed to train decoder-only
transformers: broadcasting arithmetic, matmul (batched), reductions,
activations, embedding gather and a fused softmax cross-entropy.

The design follows the classic "tape" approach: every :class:`Tensor` created
by an operation remembers its parents and a closure that accumulates gradients
into them; :meth:`Tensor.backward` topologically sorts the graph and runs the
closures in reverse order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "softmax_cross_entropy", "embedding_lookup"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (used during evaluation)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_tensor(value) -> "Tensor":
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64))


class Tensor:
    """A numpy array plus an optional gradient and backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, parents=(), backward=None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad = None
        self._parents = tuple(parents) if _GRAD_ENABLED else ()
        self._backward = backward if _GRAD_ENABLED else None

    # ------------------------------------------------------------------ infra
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    @staticmethod
    def _make(data, parents, backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray):
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad=None):
        """Back-propagate from this tensor; defaults to d(self)/d(self) = 1."""
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without an explicit gradient needs a scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order of the graph reachable from self.
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other):
        other = _as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-_as_tensor(other))

    def __rsub__(self, other):
        return _as_tensor(other) + (-self)

    def __mul__(self, other):
        other = _as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = _as_tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other):
        return _as_tensor(other) * self ** -1.0

    def __pow__(self, exponent):
        if isinstance(exponent, Tensor):
            raise TypeError("only scalar exponents are supported")
        exponent = float(exponent)
        out_data = np.power(self.data, exponent)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * np.power(self.data, exponent - 1.0))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = _as_tensor(other)
        out_data = np.matmul(self.data, other.data)

        def backward(grad):
            if self.requires_grad:
                grad_self = np.matmul(grad, np.swapaxes(other.data, -1, -2))
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.matmul(np.swapaxes(self.data, -1, -2), grad)
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------ elementwise
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def silu(self):
        """SiLU / swish: ``x * sigmoid(x)`` — the Llama MLP activation."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (sig * (1.0 + self.data * (1.0 - sig))))

        return Tensor._make(out_data, (self,), backward)

    def gelu(self):
        """Tanh-approximation GELU — the OPT MLP activation."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad):
            if self.requires_grad:
                d_inner = c * (1.0 + 3 * 0.044715 * x**2)
                local = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
                self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    # ---------------------------------------------------------------- reshape
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        out_data = self.data.transpose(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int):
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by default)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``table`` (vocab, dim) by integer ``indices`` (any shape)."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = table.data[indices]

    def backward(grad):
        if table.requires_grad:
            grad_table = np.zeros_like(table.data)
            np.add.at(grad_table, indices.ravel(), grad.reshape(-1, table.data.shape[-1]))
            table._accumulate(grad_table)

    return Tensor._make(out_data, (table,), backward)


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of ``targets`` under softmax(logits).

    ``logits`` has shape ``(..., vocab)`` and ``targets`` the matching integer
    shape ``(...,)``.  The softmax and the log are fused for numerical
    stability, and the backward pass is the standard ``softmax - onehot``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = targets.reshape(-1)
    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    nll = -log_probs[np.arange(flat_targets.size), flat_targets]
    out_data = np.array(nll.mean())

    def backward(grad):
        if logits.requires_grad:
            probs = np.exp(log_probs)
            probs[np.arange(flat_targets.size), flat_targets] -= 1.0
            probs *= float(grad) / flat_targets.size
            logits._accumulate(probs.reshape(logits.data.shape))

    return Tensor._make(out_data, (logits,), backward)
