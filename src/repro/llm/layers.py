"""Trainable building blocks (Module system, Linear, Embedding, norms).

These modules are used only for *training* the FP reference models; the
quantised evaluation path re-implements the forward pass in plain numpy
(:mod:`repro.llm.inference`) so that quantisers can be inserted at every
linear and nonlinear operator without autograd overhead.
"""

from __future__ import annotations

import numpy as np

from repro.llm.autograd import Parameter, Tensor, embedding_lookup

__all__ = ["Module", "Linear", "Embedding", "LayerNorm", "RMSNorm", "ModuleList"]


class Module:
    """Minimal module container with parameter traversal and state dicts."""

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def named_parameters(self, prefix: str = ""):
        """Yield ``(name, Parameter)`` pairs, recursing into sub-modules and lists."""
        for attr_name, value in vars(self).items():
            full = f"{prefix}{attr_name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{index}", item

    def parameters(self):
        for _, parameter in self.named_parameters():
            yield parameter

    def zero_grad(self):
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict:
        """Copy all parameters into a plain ``{name: ndarray}`` dict."""
        return {name: np.array(p.data, copy=True) for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict):
        """Load parameters from :meth:`state_dict` output (shapes must match)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()


class ModuleList(Module, list):
    """A list of sub-modules that participates in parameter traversal."""

    def __init__(self, modules=()):
        list.__init__(self, modules)

    def named_parameters(self, prefix: str = ""):
        for index, module in enumerate(self):
            yield from module.named_parameters(prefix=f"{prefix}{index}.")

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")


class Linear(Module):
    """Affine projection ``y = x @ W (+ b)`` with weight shape ``(in, out)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        rng = rng or np.random.default_rng()
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(rng.normal(0.0, scale, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token (or position) embedding table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng=None):
        rng = rng or np.random.default_rng()
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Standard LayerNorm with learnable gain and bias (OPT-style blocks)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gain = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centred = x - mu
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred * (var + self.eps) ** -0.5
        return normalised * self.gain + self.bias


class RMSNorm(Module):
    """Root-mean-square norm with learnable gain (Llama-style blocks)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gain = Parameter(np.ones(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        mean_square = (x * x).mean(axis=-1, keepdims=True)
        return x * (mean_square + self.eps) ** -0.5 * self.gain
