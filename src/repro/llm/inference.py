"""Quantisation-aware inference path (pure numpy, no autograd).

This module re-implements the transformer forward pass on top of a plain
``{name: ndarray}`` state dict so that every operator the paper quantises can
be intercepted:

* **linear layers** (Query / Key / Value / Proj / FC1 / FC2 / Gate / Up / Down
  / LM head): both the weight and the input activation pass through the
  scheme's quantisers, blocked along the reduction axis exactly like the
  BBAL PE array consumes them;
* **nonlinear operators** (softmax over attention scores, SiLU / GELU in the
  MLP): dispatched through the scheme so the BBFP segmented-LUT nonlinear
  unit of :mod:`repro.nonlinear` can replace the FP32 reference (Table IV);
* **activation recording**: a hook collects the inputs of selected linear
  layers for Fig. 3 (per-layer quantisation MSE) and for the calibration of
  the SmoothQuant / OmniQuant baselines.

Norms, residual additions and embeddings stay in floating point, matching the
paper's accelerator (the FP adder / FP encoder path in Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fp_formats import fp16_round
from repro.llm import activations as ref_act
from repro.llm.activations import log_softmax
from repro.llm.attention import causal_mask
from repro.llm.config import ModelConfig

__all__ = ["QuantizationScheme", "InferenceModel", "LINEAR_LAYER_KINDS"]

#: The linear-layer kinds recognised by layer-name matching (used by Fig. 3
#: and by baselines that treat e.g. the LM head differently).
LINEAR_LAYER_KINDS = ("q_proj", "k_proj", "v_proj", "out_proj", "gate_proj", "up_proj",
                      "down_proj", "fc1", "fc2", "lm_head")


def _identity_weight(name: str, w: np.ndarray) -> np.ndarray:
    return w


def _identity_activation(name: str, x: np.ndarray) -> np.ndarray:
    return x


def _reference_nonlinear(kind: str, x: np.ndarray) -> np.ndarray:
    try:
        return ref_act.ACTIVATIONS[kind](x)
    except KeyError:
        raise ValueError(f"unknown nonlinear kind {kind!r}") from None


@dataclass
class QuantizationScheme:
    """Bundle of quantisers applied during inference.

    Attributes
    ----------
    name:
        Display name used in result tables (e.g. ``"BBFP(4,2)"``).
    weight_fn:
        ``(layer_name, weight) -> weight_hat`` fake-quantiser; the weight has
        shape ``(in_features, out_features)`` and should be quantised along
        the reduction axis (axis 0).
    activation_fn:
        ``(layer_name, activation) -> activation_hat`` fake-quantiser; the
        activation has shape ``(..., in_features)`` and should be quantised
        along the last axis.
    softmax_fn:
        Replacement for the attention softmax (``(scores, axis) -> probs``).
    nonlinear_fn:
        Replacement for elementwise nonlinearities
        (``(kind, x) -> y`` with ``kind`` in ``{"silu", "gelu", "relu", "sigmoid"}``).
    quantize_lm_head:
        Whether the final vocabulary projection is quantised (the paper keeps
        it in the same format as the other linears; disable for ablations).
    """

    name: str
    weight_fn: callable = field(default=_identity_weight)
    activation_fn: callable = field(default=_identity_activation)
    softmax_fn: callable = field(default=ref_act.softmax)
    nonlinear_fn: callable = field(default=_reference_nonlinear)
    quantize_lm_head: bool = True

    # ------------------------------------------------------------- factories
    @staticmethod
    def fp_reference(name: str = "FP32") -> "QuantizationScheme":
        """No quantisation anywhere — the accuracy baseline."""
        return QuantizationScheme(name=name)

    @staticmethod
    def fp16(name: str = "FP16") -> "QuantizationScheme":
        """IEEE half precision on weights and activations (the paper's Table II baseline)."""
        return QuantizationScheme(
            name=name,
            weight_fn=lambda _, w: fp16_round(w),
            activation_fn=lambda _, x: fp16_round(x),
        )

    @staticmethod
    def from_format(config, name: str = None) -> "QuantizationScheme":
        """Quantise weights and activations with any registered format.

        ``config`` may be a spec string (``"BBFP(4,2)"``, ``"int8"``, ...), a
        format configuration, or a :class:`repro.quant.Quantizer` — everything
        dispatches through the :mod:`repro.quant` registry, so a newly
        registered format needs no edits here.  Objects of unregistered types
        that expose a ``quantize_dequantize(x, axis)`` hook keep working as a
        fallback.  Weights are blocked along the reduction axis (axis 0) and
        activations along their last axis.  Formats without a blocking axis
        keep their own convention: per-tensor/per-channel INT scales and
        element-wise minifloat rounding are axis-independent (per-channel
        means one scale per *last-axis* channel — the output channel of a
        ``(in, out)`` weight — matching the usual per-output-channel rule).
        """
        from repro.quant import UnknownFormatError, get_quantizer

        try:
            quantizer = get_quantizer(config)
        except UnknownFormatError:
            if isinstance(config, str):
                raise  # keep the registry's message (incl. did-you-mean)
            if not hasattr(config, "quantize_dequantize"):
                raise TypeError(f"unsupported format config {config!r}") from None
            weight = lambda _, w: config.quantize_dequantize(w, axis=0)
            act = lambda _, x: config.quantize_dequantize(x, axis=-1)
            default_name = getattr(config, "name", type(config).__name__)
            return QuantizationScheme(name=name or default_name,
                                      weight_fn=weight, activation_fn=act)
        weight = lambda _, w: quantizer.quantize_dequantize(w, axis=0)
        act = lambda _, x: quantizer.quantize_dequantize(x, axis=-1)
        return QuantizationScheme(name=name or quantizer.name,
                                  weight_fn=weight, activation_fn=act)

    def with_nonlinear(self, softmax_fn=None, nonlinear_fn=None, name: str = None) -> "QuantizationScheme":
        """Return a copy with the nonlinear operators replaced (Table IV experiments)."""
        return QuantizationScheme(
            name=name or self.name,
            weight_fn=self.weight_fn,
            activation_fn=self.activation_fn,
            softmax_fn=softmax_fn or self.softmax_fn,
            nonlinear_fn=nonlinear_fn or self.nonlinear_fn,
            quantize_lm_head=self.quantize_lm_head,
        )


class InferenceModel:
    """Numpy forward pass over a trained state dict with pluggable quantisation."""

    def __init__(self, config: ModelConfig, state_dict: dict, scheme: QuantizationScheme = None):
        self.config = config
        self.state = {k: np.asarray(v, dtype=np.float64) for k, v in state_dict.items()}
        self.scheme = scheme or QuantizationScheme.fp_reference()
        self._weight_cache = {}
        self._recorder = None
        self._validate_state()

    # ----------------------------------------------------------------- setup
    def _validate_state(self):
        required = ["token_embedding.weight", "position_embedding.weight", "lm_head.weight"]
        for key in required:
            if key not in self.state:
                raise KeyError(f"state dict is missing {key!r}")
        for i in range(self.config.n_layers):
            if f"blocks.{i}.attention.q_proj.weight" not in self.state:
                raise KeyError(f"state dict is missing block {i}")

    def set_scheme(self, scheme: QuantizationScheme):
        """Switch quantisation scheme (clears the quantised-weight cache)."""
        self.scheme = scheme
        self._weight_cache = {}

    # ------------------------------------------------------------- recording
    class _Recorder:
        def __init__(self, model, layer_kinds):
            self.model = model
            self.layer_kinds = layer_kinds
            self.records = {}

        def __enter__(self):
            self.model._recorder = self
            return self.records

        def __exit__(self, exc_type, exc, tb):
            self.model._recorder = None
            return False

    def record_activations(self, layer_kinds=LINEAR_LAYER_KINDS):
        """Context manager collecting linear-layer inputs keyed by layer name.

        Example
        -------
        >>> with model.record_activations(("q_proj", "fc1")) as records:  # doctest: +SKIP
        ...     model.forward(tokens)
        >>> records["blocks.0.attention.q_proj"].shape  # doctest: +SKIP
        """
        return InferenceModel._Recorder(self, tuple(layer_kinds))

    # --------------------------------------------------------------- helpers
    def _linear(self, name: str, x: np.ndarray) -> np.ndarray:
        weight = self.state[f"{name}.weight"]
        bias = self.state.get(f"{name}.bias")
        kind = name.rsplit(".", 1)[-1]
        if self._recorder is not None and kind in self._recorder.layer_kinds:
            self._recorder.records.setdefault(name, []).append(np.array(x, copy=True))
        quantize = self.scheme.quantize_lm_head or kind != "lm_head"
        if quantize:
            if name not in self._weight_cache:
                self._weight_cache[name] = self.scheme.weight_fn(name, weight)
            weight = self._weight_cache[name]
            x = self.scheme.activation_fn(name, x)
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    def _norm(self, prefix: str, x: np.ndarray) -> np.ndarray:
        if self.config.norm == "rmsnorm":
            gain = self.state[f"{prefix}.gain"]
            mean_square = np.mean(x**2, axis=-1, keepdims=True)
            return x / np.sqrt(mean_square + 1e-5) * gain
        gain = self.state[f"{prefix}.gain"]
        bias = self.state[f"{prefix}.bias"]
        mu = x.mean(axis=-1, keepdims=True)
        var = np.mean((x - mu) ** 2, axis=-1, keepdims=True)
        return (x - mu) / np.sqrt(var + 1e-5) * gain + bias

    def _qkv_heads(self, prefix: str, x: np.ndarray) -> tuple:
        """Project ``x`` to per-head Q/K/V, each ``(batch, heads, seq, head_dim)``."""
        cfg = self.config
        batch, seq_len, _ = x.shape

        def split(t):
            return t.reshape(batch, seq_len, cfg.n_heads, cfg.head_dim).transpose(0, 2, 1, 3)

        return (split(self._linear(f"{prefix}.q_proj", x)),
                split(self._linear(f"{prefix}.k_proj", x)),
                split(self._linear(f"{prefix}.v_proj", x)))

    def _attend(self, prefix: str, scores: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Masked scores -> softmax -> context -> merged heads -> out_proj."""
        attn = self.scheme.softmax_fn(scores, axis=-1)
        context = attn @ v
        batch, _, seq_len, _ = context.shape
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.config.d_model)
        return self._linear(f"{prefix}.out_proj", context)

    def _attention(self, index: int, x: np.ndarray) -> np.ndarray:
        cfg = self.config
        _, seq_len, _ = x.shape
        prefix = f"blocks.{index}.attention"
        q, k, v = self._qkv_heads(prefix, x)
        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(cfg.head_dim)
        scores = scores + causal_mask(seq_len)
        return self._attend(prefix, scores, v)

    def _attention_step(self, index: int, x: np.ndarray, cache, rows: np.ndarray,
                        start: np.ndarray) -> np.ndarray:
        """Attention over cached K/V plus the new positions in ``x``.

        ``start[b]`` is the number of already-cached positions of row
        ``rows[b]`` before this step; the new keys/values are appended to the
        cache (where the cache's quantiser, if any, is applied) and the new
        queries attend over the full cached context.  With ``start == 0`` and
        an unquantised cache this computes exactly :meth:`_attention`
        (equivalence pinned by ``tests/serve/test_forward_step.py``).
        """
        cfg = self.config
        _, n_new, _ = x.shape
        prefix = f"blocks.{index}.attention"
        q, k, v = self._qkv_heads(prefix, x)
        cache.append(index, rows, k, v)
        context_len = int((start + n_new).max())
        k_ctx, v_ctx = cache.context(index, rows, context_len)
        scores = q @ k_ctx.transpose(0, 1, 3, 2) / np.sqrt(cfg.head_dim)
        # Causal mask generalised to a cached context: key at absolute
        # position j is visible to the query at absolute position p iff
        # j <= p.  The same 0 / -1e9 additive values as causal_mask, so the
        # start == 0 full-prefix case reproduces the forward() numerics.
        key_pos = np.arange(context_len)
        query_pos = start[:, None] + np.arange(n_new)[None, :]
        mask = (key_pos[None, None, :] > query_pos[:, :, None]) * -1e9
        scores = scores + mask[:, None, :, :]
        return self._attend(prefix, scores, v_ctx)

    def _mlp(self, index: int, x: np.ndarray) -> np.ndarray:
        prefix = f"blocks.{index}.mlp"
        if self.config.uses_gated_mlp:
            gate = self._linear(f"{prefix}.gate_proj", x)
            up = self._linear(f"{prefix}.up_proj", x)
            hidden = self.scheme.nonlinear_fn("silu", gate) * up
            return self._linear(f"{prefix}.down_proj", hidden)
        hidden = self._linear(f"{prefix}.fc1", x)
        hidden = self.scheme.nonlinear_fn(self.config.activation, hidden)
        return self._linear(f"{prefix}.fc2", hidden)

    # ---------------------------------------------------------------- public
    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Return logits ``(batch, seq, vocab)`` for integer ``tokens``."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        _, seq_len = tokens.shape
        if seq_len > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_seq_len {self.config.max_seq_len}"
            )
        x = self.state["token_embedding.weight"][tokens] + self.state["position_embedding.weight"][
            np.arange(seq_len)
        ]
        for i in range(self.config.n_layers):
            x = x + self._attention(i, self._norm(f"blocks.{i}.attn_norm", x))
            x = x + self._mlp(i, self._norm(f"blocks.{i}.mlp_norm", x))
        x = self._norm("final_norm", x)
        return self._linear("lm_head", x)

    def forward_step(self, tokens: np.ndarray, cache, rows=None) -> np.ndarray:
        """Incremental forward: embed only the new ``tokens``, attend over ``cache``.

        ``tokens`` is ``(batch, n_new)`` (or 1-D for a single sequence) of new
        token ids; ``cache`` is a :class:`repro.serve.KVCache` holding the
        already-processed context of each sequence.  ``rows`` selects which
        cache slots the batch rows correspond to (all slots by default), so a
        continuous-batching engine can prefill one request and batch-decode
        another set in interleaved calls.  Keys/values of the new positions
        are appended to the cache — through the cache's quantiser when one is
        configured — and the cache lengths advance by ``n_new``.

        Returns logits ``(batch, n_new, vocab)`` for the new positions only.
        A fresh cache plus one call over a whole prompt computes exactly
        :meth:`forward`; subsequent single-token calls continue it in O(1)
        forward cost per token instead of re-running the full prefix.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, n_new = tokens.shape
        if n_new == 0:
            raise ValueError("forward_step needs at least one new token")
        if rows is None:
            if batch != cache.batch_size:
                raise ValueError(
                    f"token batch ({batch}) does not match the cache batch "
                    f"({cache.batch_size}); pass rows= to address a subset of slots"
                )
            rows = np.arange(cache.batch_size)
        else:
            rows = np.asarray(rows, dtype=np.int64)
            if rows.size != batch:
                raise ValueError(f"rows ({rows.size}) must match the token batch ({batch})")
        start = cache.lengths[rows].copy()
        limit = min(cache.max_seq_len, self.config.max_seq_len)
        if np.any(start + n_new > limit):
            raise ValueError(
                f"cached context plus {n_new} new token(s) exceeds max_seq_len {limit}"
            )
        positions = start[:, None] + np.arange(n_new)[None, :]
        x = self.state["token_embedding.weight"][tokens] + \
            self.state["position_embedding.weight"][positions]
        for i in range(self.config.n_layers):
            x = x + self._attention_step(i, self._norm(f"blocks.{i}.attn_norm", x),
                                         cache, rows, start)
            x = x + self._mlp(i, self._norm(f"blocks.{i}.mlp_norm", x))
        x = self._norm("final_norm", x)
        logits = self._linear("lm_head", x)
        cache.advance(rows, n_new)
        return logits

    def negative_log_likelihood(self, tokens: np.ndarray) -> float:
        """Mean next-token NLL (nats) of a batch of ``(batch, seq+1)`` token windows."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        logits = self.forward(tokens[:, :-1])
        targets = tokens[:, 1:]
        log_probs = log_softmax(logits, axis=-1)
        picked = np.take_along_axis(log_probs, targets[..., None], axis=-1)[..., 0]
        return float(-picked.mean())
