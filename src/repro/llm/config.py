"""Model configuration for the decoder-only transformer substrate."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

__all__ = ["ModelConfig"]

_VALID_ARCH = ("llama", "opt")
_VALID_NORM = ("rmsnorm", "layernorm")
_VALID_ACT = ("silu", "gelu", "relu")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a decoder-only language model.

    The two ``arch`` presets follow the families evaluated in the paper:

    ``"llama"``
        RMSNorm, SwiGLU MLP (gate/up/down projections), no biases — the
        structure whose nonlinear layers are Softmax + SiLU, matching the
        paper's nonlinear unit evaluation (Table IV).
    ``"opt"``
        LayerNorm with biases and a GELU MLP (fc1/fc2) — the OPT family used
        in Table II and Fig. 1(a).
    """

    name: str
    vocab_size: int
    d_model: int
    n_heads: int
    n_layers: int
    d_ff: int
    max_seq_len: int = 128
    arch: str = "llama"
    norm: str = field(default="")
    activation: str = field(default="")
    use_bias: bool = field(default=None)
    seed: int = 0

    def __post_init__(self):
        if self.arch not in _VALID_ARCH:
            raise ValueError(f"arch must be one of {_VALID_ARCH}, got {self.arch!r}")
        # Fill architecture-dependent defaults.
        if not self.norm:
            object.__setattr__(self, "norm", "rmsnorm" if self.arch == "llama" else "layernorm")
        if not self.activation:
            object.__setattr__(self, "activation", "silu" if self.arch == "llama" else "gelu")
        if self.use_bias is None:
            object.__setattr__(self, "use_bias", self.arch == "opt")
        if self.norm not in _VALID_NORM:
            raise ValueError(f"norm must be one of {_VALID_NORM}, got {self.norm!r}")
        if self.activation not in _VALID_ACT:
            raise ValueError(f"activation must be one of {_VALID_ACT}, got {self.activation!r}")
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by n_heads ({self.n_heads})"
            )
        for field_name in ("vocab_size", "d_model", "n_heads", "n_layers", "d_ff", "max_seq_len"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be positive")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def uses_gated_mlp(self) -> bool:
        """Llama-style models use a gated (SwiGLU) MLP with an extra projection."""
        return self.arch == "llama"

    def parameter_count(self) -> int:
        """Approximate trainable parameter count (used for model-family scaling)."""
        embed = self.vocab_size * self.d_model + self.max_seq_len * self.d_model
        attn = 4 * self.d_model * self.d_model
        if self.uses_gated_mlp:
            mlp = 3 * self.d_model * self.d_ff
        else:
            mlp = 2 * self.d_model * self.d_ff
        head = self.d_model * self.vocab_size
        return embed + self.n_layers * (attn + mlp) + head

    def as_dict(self) -> dict:
        return asdict(self)
