"""Next-token sampling shared by offline generation and the serving engine.

Both :mod:`repro.llm.generation` (the single-sequence convenience loop) and
:mod:`repro.serve.engine` (the continuous-batching engine) turn last-position
logits into a token id the same way: greedy argmax at temperature 0, otherwise
temperature-scaled top-k sampling over probabilities derived from the shared
numerically-stable :func:`~repro.llm.activations.log_softmax`.  Keeping the
policy in one place guarantees a request served by the engine samples exactly
like the same prompt run through :func:`~repro.llm.generation.generate_tokens`.
"""

from __future__ import annotations

import numpy as np

from repro.llm.activations import log_softmax

__all__ = ["sample_token"]


def sample_token(logits: np.ndarray, temperature: float = 0.0, top_k: int = 0,
                 rng: np.random.Generator = None) -> int:
    """Pick the next token id from last-position ``logits``.

    ``temperature == 0`` selects the argmax (greedy decoding, no ``rng``
    needed); otherwise the logits are divided by the temperature, optionally
    restricted to the ``top_k`` most likely candidates, and a token is drawn
    from the resulting distribution using ``rng``.
    """
    logits = np.asarray(logits, dtype=np.float64).ravel()
    if temperature < 0:
        raise ValueError("temperature must be >= 0")
    if temperature == 0.0:
        return int(np.argmax(logits))
    if rng is None:
        raise ValueError("sampling with temperature > 0 requires an rng")
    scaled = logits / temperature
    if 0 < top_k < scaled.size:
        cutoff = np.partition(scaled, -top_k)[-top_k]
        scaled = np.where(scaled >= cutoff, scaled, -np.inf)
    probabilities = np.exp(log_softmax(scaled))
    probabilities /= probabilities.sum()
    return int(rng.choice(probabilities.size, p=probabilities))
