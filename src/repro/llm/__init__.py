"""LLM substrate: autodiff, transformer models, training, data and quantised inference.

The paper evaluates BBFP by quantising Llama/OPT checkpoints and measuring
WikiText-2 perplexity.  Those checkpoints (and GPUs) are not available
offline, so this package provides the closest synthetic equivalent that
exercises the same code paths:

* a from-scratch reverse-mode autodiff engine over numpy
  (:mod:`repro.llm.autograd`);
* Llama-style (RMSNorm + SwiGLU) and OPT-style (LayerNorm + GELU) decoder-only
  transformers (:mod:`repro.llm.transformer`);
* a deterministic synthetic character corpus with WikiText-like statistics
  (:mod:`repro.llm.dataset`) and a character tokenizer
  (:mod:`repro.llm.tokenizer`);
* an Adam trainer with on-disk caching (:mod:`repro.llm.training`);
* a model zoo mirroring the paper's Llama/OPT size families including
  function-preserving activation-outlier injection (:mod:`repro.llm.zoo`);
* a pure-numpy inference path with pluggable weight/activation/nonlinear
  quantisation (:mod:`repro.llm.inference`) and perplexity evaluation
  (:mod:`repro.llm.perplexity`).
"""

from repro.llm.config import ModelConfig
from repro.llm.transformer import TransformerLM
from repro.llm.inference import InferenceModel, QuantizationScheme
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.generation import GenerationConfig, generate_text, generate_tokens

__all__ = [
    "ModelConfig",
    "TransformerLM",
    "InferenceModel",
    "QuantizationScheme",
    "evaluate_perplexity",
    "GenerationConfig",
    "generate_tokens",
    "generate_text",
]
