"""Character-level tokenizer for the synthetic corpus."""

from __future__ import annotations

import numpy as np

__all__ = ["CharTokenizer"]


class CharTokenizer:
    """Maps characters to integer ids and back.

    The vocabulary is built from the corpus text plus an ``<unk>`` symbol at
    id 0, so the tokenizer is deterministic given the same corpus.
    """

    UNK_TOKEN = "\x00"

    def __init__(self, text: str):
        symbols = sorted(set(text))
        self._itos = [self.UNK_TOKEN] + [c for c in symbols if c != self.UNK_TOKEN]
        self._stoi = {c: i for i, c in enumerate(self._itos)}

    @property
    def vocab_size(self) -> int:
        return len(self._itos)

    def encode(self, text: str) -> np.ndarray:
        """Encode a string into an int64 id array; unknown characters map to 0."""
        return np.array([self._stoi.get(c, 0) for c in text], dtype=np.int64)

    def decode(self, ids) -> str:
        """Decode an id sequence back to a string."""
        out = []
        for i in np.asarray(ids, dtype=np.int64).ravel():
            if not 0 <= i < len(self._itos):
                raise ValueError(f"token id {i} out of range [0, {len(self._itos)})")
            out.append(self._itos[int(i)])
        return "".join(out)

    def __len__(self) -> int:
        return self.vocab_size
