"""Reference (FP) nonlinear operators used by the inference path and the nonlinear unit.

These are plain numpy functions: the quantised inference path calls either
these references or their LUT-based BBFP counterparts from
:mod:`repro.nonlinear`, which is exactly the substitution studied in Table IV.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "silu", "gelu", "sigmoid", "relu", "exponential",
           "ACTIVATIONS"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax along ``axis``.

    The single shared helper behind every log-probability in the library:
    :meth:`~repro.llm.inference.InferenceModel.negative_log_likelihood` (and
    therefore perplexity), sequence scoring, and the samplers of
    :mod:`repro.llm.sampling` / :mod:`repro.serve`.  Entries of ``-inf``
    (masked-out candidates) stay ``-inf`` without poisoning the finite ones.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid ``1 / (1 + exp(-x))`` (Eq. 15)."""
    x = np.asarray(x, dtype=np.float64)
    return 1.0 / (1.0 + np.exp(-x))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish ``x * sigmoid(x)`` — the Llama MLP activation."""
    x = np.asarray(x, dtype=np.float64)
    return x * sigmoid(x)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU — the OPT MLP activation."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def relu(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    return np.maximum(x, 0.0)


def exponential(x: np.ndarray) -> np.ndarray:
    """``exp(x)`` — the transcendental inside softmax, tabulated by the LUT unit."""
    return np.exp(np.asarray(x, dtype=np.float64))


ACTIVATIONS = {
    "silu": silu,
    "gelu": gelu,
    "relu": relu,
    "sigmoid": sigmoid,
}
