"""Adam optimiser and the training loop producing the FP reference checkpoints."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.llm.autograd import no_grad
from repro.llm.config import ModelConfig
from repro.llm.dataset import SyntheticCorpus
from repro.llm.transformer import TransformerLM

__all__ = ["Adam", "TrainingConfig", "TrainingResult", "train_model", "evaluate_loss"]


class Adam:
    """Adam optimiser with optional gradient clipping and weight decay."""

    def __init__(self, parameters, lr: float = 3e-3, betas=(0.9, 0.95), eps: float = 1e-8,
                 weight_decay: float = 0.0, grad_clip: float = 1.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step = 0

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def _clip_gradients(self):
        if self.grad_clip is None or self.grad_clip <= 0:
            return
        total = 0.0
        for p in self.parameters:
            if p.grad is not None:
                total += float(np.sum(p.grad**2))
        norm = np.sqrt(total)
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for p in self.parameters:
                if p.grad is not None:
                    p.grad *= scale

    def step(self):
        self._step += 1
        self._clip_gradients()
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the reference-model training run."""

    steps: int = 400
    batch_size: int = 8
    seq_len: int = 64
    learning_rate: float = 3e-3
    warmup_steps: int = 20
    grad_clip: float = 1.0
    weight_decay: float = 0.01
    eval_every: int = 100
    eval_batches: int = 4
    seed: int = 0


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    state_dict: dict
    train_losses: list = field(default_factory=list)
    valid_losses: list = field(default_factory=list)
    wall_time_seconds: float = 0.0

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    @property
    def final_valid_loss(self) -> float:
        return self.valid_losses[-1] if self.valid_losses else float("nan")


def evaluate_loss(model: TransformerLM, corpus: SyntheticCorpus, batch_size: int, seq_len: int,
                  max_batches: int = 4, split: str = "valid") -> float:
    """Average next-token loss over deterministic evaluation batches."""
    losses = []
    with no_grad():
        for batch in corpus.sequential_batches(split, batch_size, seq_len, max_batches=max_batches):
            losses.append(float(model.loss(batch).data))
    if not losses:
        raise ValueError("evaluation produced no batches; corpus too small for the requested shape")
    return float(np.mean(losses))


def _learning_rate(step: int, config: TrainingConfig) -> float:
    """Linear warmup followed by cosine decay to 10% of the peak rate."""
    if step < config.warmup_steps:
        return config.learning_rate * (step + 1) / max(1, config.warmup_steps)
    progress = (step - config.warmup_steps) / max(1, config.steps - config.warmup_steps)
    return config.learning_rate * (0.1 + 0.9 * 0.5 * (1.0 + np.cos(np.pi * progress)))


def train_model(model_config: ModelConfig, corpus: SyntheticCorpus,
                training: TrainingConfig = TrainingConfig()) -> TrainingResult:
    """Train a :class:`TransformerLM` from scratch on ``corpus``.

    Returns the final state dict plus loss curves.  The sequence length is
    clipped to the model's ``max_seq_len``.
    """
    if model_config.vocab_size != corpus.vocab_size:
        raise ValueError(
            f"model vocab_size ({model_config.vocab_size}) must match the corpus "
            f"({corpus.vocab_size}); build the config from the corpus"
        )
    seq_len = min(training.seq_len, model_config.max_seq_len - 1)
    rng = np.random.default_rng(training.seed)
    model = TransformerLM(model_config)
    optimiser = Adam(
        model.parameters(),
        lr=training.learning_rate,
        weight_decay=training.weight_decay,
        grad_clip=training.grad_clip,
    )

    result = TrainingResult(state_dict={})
    start = time.time()
    for step in range(training.steps):
        optimiser.lr = _learning_rate(step, training)
        batch = corpus.sample_batch("train", training.batch_size, seq_len, rng=rng)
        optimiser.zero_grad()
        loss = model.loss(batch)
        loss.backward()
        optimiser.step()
        result.train_losses.append(float(loss.data))
        if training.eval_every and (step + 1) % training.eval_every == 0:
            result.valid_losses.append(
                evaluate_loss(model, corpus, training.batch_size, seq_len, training.eval_batches)
            )
    if not result.valid_losses:
        result.valid_losses.append(
            evaluate_loss(model, corpus, training.batch_size, seq_len, training.eval_batches)
        )
    result.wall_time_seconds = time.time() - start
    result.state_dict = model.state_dict()
    return result
