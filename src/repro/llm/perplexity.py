"""Perplexity evaluation of quantised models (the Table II / Table IV metric)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel, QuantizationScheme

__all__ = ["EvalConfig", "evaluate_perplexity", "perplexity_table"]


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation shape: how many held-out tokens perplexity is measured on."""

    batch_size: int = 8
    seq_len: int = 48
    max_batches: int = 4
    split: str = "valid"


def evaluate_perplexity(model: InferenceModel, corpus: SyntheticCorpus,
                        eval_config: EvalConfig = EvalConfig(), nll_fn=None) -> float:
    """Teacher-forced perplexity ``exp(mean NLL)`` on deterministic held-out batches.

    ``nll_fn`` optionally replaces the per-batch scorer (default:
    ``model.negative_log_likelihood``); alternative scorers — e.g. the
    quantised-KV path of :func:`repro.serve.kv_cached_perplexity` — share
    this loop so their numbers stay comparable to the Table II columns.
    """
    nll_fn = nll_fn or model.negative_log_likelihood
    seq_len = min(eval_config.seq_len, model.config.max_seq_len - 1)
    nlls = []
    for batch in corpus.sequential_batches(
        eval_config.split, eval_config.batch_size, seq_len, max_batches=eval_config.max_batches
    ):
        nlls.append(nll_fn(batch))
    if not nlls:
        raise ValueError("no evaluation batches produced; corpus too small for the eval shape")
    return float(np.exp(np.mean(nlls)))


def perplexity_table(model: InferenceModel, corpus: SyntheticCorpus, schemes,
                     eval_config: EvalConfig = EvalConfig()) -> dict:
    """Evaluate several quantisation schemes on one model.

    Returns ``{scheme_name: perplexity}`` in the order the schemes were given.
    The model's original scheme is restored afterwards.
    """
    original = model.scheme
    results = {}
    try:
        for scheme in schemes:
            if not isinstance(scheme, QuantizationScheme):
                raise TypeError(f"expected QuantizationScheme, got {type(scheme)!r}")
            model.set_scheme(scheme)
            results[scheme.name] = evaluate_perplexity(model, corpus, eval_config)
    finally:
        model.set_scheme(original)
    return results
