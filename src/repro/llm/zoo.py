"""Model zoo mirroring the paper's Llama / OPT size families.

The paper evaluates 12 linear-quantisation checkpoints (Llama 1B…65B and OPT
1.3B…66B, Table II) plus three nonlinear-quantisation checkpoints (Llama-7B,
Llama2-7B, Llama3-8B, Table IV).  Training billion-parameter models offline is
impossible, so each paper checkpoint is mapped to a miniature *simulated*
model of the matching architecture family:

* ``sim-llama-*``: RMSNorm + SwiGLU, no biases, Llama-like activation-outlier
  profile (more and larger outlier channels);
* ``sim-opt-*``: LayerNorm + GELU with biases, OPT-like outlier profile
  (fewer and milder outlier channels).

Model capacity and training budget grow with the size tier, so the FP16
perplexity ordering of the zoo mirrors the paper (bigger model => lower PPL).
Trained weights are cached on disk (``.npz``) so repeated experiments reuse
them; the outlier-injected state dict is derived from the cached weights.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.ioutils import atomic_writer
from repro.llm.config import ModelConfig
from repro.llm.dataset import CorpusConfig, SyntheticCorpus
from repro.llm.inference import InferenceModel, QuantizationScheme
from repro.llm.outliers import LLAMA_PROFILE, OPT_PROFILE, OutlierProfile, inject_outliers
from repro.llm.training import TrainingConfig, train_model

__all__ = [
    "ModelSpec",
    "LLAMA_FAMILY",
    "OPT_FAMILY",
    "NONLINEAR_FAMILY",
    "ALL_SPECS",
    "get_spec",
    "default_corpus",
    "load_state_dict",
    "load_inference_model",
    "default_cache_dir",
]


@dataclass(frozen=True)
class ModelSpec:
    """A paper checkpoint and the simulated miniature standing in for it."""

    paper_name: str
    family: str  # "llama" or "opt"
    size_tier: int  # 0 = smallest of the family
    d_model: int
    n_layers: int
    n_heads: int
    d_ff: int
    train_steps: int
    seed: int

    @property
    def key(self) -> str:
        """Stable identifier used for cache file names."""
        return self.paper_name.lower().replace(".", "_").replace("-", "_")

    @property
    def outlier_profile(self) -> OutlierProfile:
        return LLAMA_PROFILE if self.family == "llama" else OPT_PROFILE

    def model_config(self, vocab_size: int, max_seq_len: int = 96) -> ModelConfig:
        return ModelConfig(
            name=self.paper_name,
            vocab_size=vocab_size,
            d_model=self.d_model,
            n_heads=self.n_heads,
            n_layers=self.n_layers,
            d_ff=self.d_ff,
            max_seq_len=max_seq_len,
            arch=self.family,
            seed=self.seed,
        )

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(steps=self.train_steps, batch_size=8, seq_len=48, seed=self.seed)


def _llama(paper_name, tier, d_model, n_layers, n_heads, d_ff, steps, seed):
    return ModelSpec(paper_name, "llama", tier, d_model, n_layers, n_heads, d_ff, steps, seed)


def _opt(paper_name, tier, d_model, n_layers, n_heads, d_ff, steps, seed):
    return ModelSpec(paper_name, "opt", tier, d_model, n_layers, n_heads, d_ff, steps, seed)


#: Table II Llama column order: 1B, 3B, 7B, 13B, 30B, 65B.
LLAMA_FAMILY = (
    _llama("Llama-1B", 0, 48, 2, 4, 128, 220, 11),
    _llama("Llama-3B", 1, 56, 2, 4, 144, 260, 12),
    _llama("Llama-7B", 2, 64, 3, 4, 160, 320, 13),
    _llama("Llama-13B", 3, 72, 3, 4, 192, 360, 14),
    _llama("Llama-30B", 4, 80, 4, 4, 208, 400, 15),
    _llama("Llama-65B", 5, 88, 4, 8, 224, 440, 16),
)

#: Table II OPT column order: 1.3B, 2.7B, 6.7B, 13B, 30B, 66B.
OPT_FAMILY = (
    _opt("OPT-1.3B", 0, 48, 2, 4, 128, 220, 21),
    _opt("OPT-2.7B", 1, 56, 2, 4, 144, 260, 22),
    _opt("OPT-6.7B", 2, 64, 3, 4, 160, 320, 23),
    _opt("OPT-13B", 3, 72, 3, 4, 192, 360, 24),
    _opt("OPT-30B", 4, 80, 4, 4, 208, 400, 25),
    _opt("OPT-66B", 5, 88, 4, 8, 224, 440, 26),
)

#: Table IV checkpoints (nonlinear-unit evaluation); Llama-7B is shared with Table II.
NONLINEAR_FAMILY = (
    LLAMA_FAMILY[2],
    _llama("Llama2-7B", 2, 64, 3, 4, 160, 320, 33),
    _llama("Llama3-8B", 2, 72, 3, 4, 176, 340, 34),
)

ALL_SPECS = tuple(dict.fromkeys(LLAMA_FAMILY + OPT_FAMILY + NONLINEAR_FAMILY))


def get_spec(paper_name: str) -> ModelSpec:
    """Look up a :class:`ModelSpec` by its paper name (case-insensitive)."""
    wanted = paper_name.lower()
    for spec in ALL_SPECS:
        if spec.paper_name.lower() == wanted:
            return spec
    raise KeyError(f"unknown model {paper_name!r}; known: {[s.paper_name for s in ALL_SPECS]}")


_CORPUS_CACHE = {}


def default_corpus(fast: bool = None) -> SyntheticCorpus:
    """The shared evaluation corpus (cached per process).

    ``fast=True`` (or the environment variable ``REPRO_FAST=1``) shrinks the
    corpus so unit tests stay quick; experiments use the full corpus.
    """
    if fast is None:
        fast = os.environ.get("REPRO_FAST", "0") == "1"
    key = "fast" if fast else "full"
    if key not in _CORPUS_CACHE:
        config = CorpusConfig(num_sentences=900 if fast else 3000)
        _CORPUS_CACHE[key] = SyntheticCorpus(config)
    return _CORPUS_CACHE[key]


def default_cache_dir() -> Path:
    """Directory holding trained model weights (``REPRO_CACHE_DIR`` overrides)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / ".cache" / "models"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_token(spec: ModelSpec, corpus: SyntheticCorpus, training: TrainingConfig) -> str:
    payload = repr((spec, corpus.config, training)).encode()
    return hashlib.sha1(payload).hexdigest()[:12]


def load_state_dict(spec: ModelSpec, corpus: SyntheticCorpus = None, cache_dir: Path = None,
                    training: TrainingConfig = None, with_outliers: bool = True) -> tuple:
    """Return ``(model_config, state_dict)`` for a zoo model, training it if necessary.

    Trained FP weights are cached under ``cache_dir``; the outlier injection is
    applied on load (it is deterministic and fast), so the cache stores the
    plain trained weights.
    """
    corpus = corpus or default_corpus()
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    training = training or spec.training_config()
    config = spec.model_config(corpus.vocab_size)
    token = _cache_token(spec, corpus, training)
    cache_file = cache_dir / f"{spec.key}_{token}.npz"

    if cache_file.exists():
        with np.load(cache_file) as payload:
            state = {k: payload[k] for k in payload.files}
    else:
        result = train_model(config, corpus, training)
        state = result.state_dict
        # Write-then-rename so concurrent trainers of the same spec (pipeline
        # workers racing before the shared zoo stage existed, or two parallel
        # runs sharing a cache dir) can never leave a torn .npz behind: each
        # writer produces an identical deterministic artefact, so
        # last-writer-wins is safe.
        with atomic_writer(cache_file) as fh:
            np.savez_compressed(fh, **state)

    if with_outliers:
        state = inject_outliers(config, state, spec.outlier_profile)
    return config, state


def load_inference_model(spec_or_name, corpus: SyntheticCorpus = None,
                         scheme: QuantizationScheme = None, cache_dir: Path = None,
                         training: TrainingConfig = None,
                         with_outliers: bool = True) -> InferenceModel:
    """Convenience wrapper returning a ready-to-evaluate :class:`InferenceModel`."""
    spec = spec_or_name if isinstance(spec_or_name, ModelSpec) else get_spec(spec_or_name)
    corpus = corpus or default_corpus()
    config, state = load_state_dict(
        spec, corpus=corpus, cache_dir=cache_dir, training=training, with_outliers=with_outliers
    )
    return InferenceModel(config, state, scheme=scheme)
