"""Result containers and plain-text table formatting for the experiment drivers.

Every experiment driver returns an :class:`ExperimentResult`, which carries
the regenerated table rows (or figure series) together with the paper artefact
it corresponds to and free-form notes about how to read the comparison.  The
benchmarks print these tables so the paper's rows can be compared directly
against the console output, and :func:`save_result` dumps them under
``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.ioutils import atomic_write_text

__all__ = ["ExperimentResult", "format_table", "save_result", "load_result"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows, columns=None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(str(col)), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in table)
    return f"{header}\n{separator}\n{body}"


@dataclass
class ExperimentResult:
    """Rows regenerated for one paper table or figure."""

    experiment_id: str
    title: str
    rows: list
    columns: list = None
    notes: str = ""
    metadata: dict = field(default_factory=dict)

    def to_text(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        table = format_table(self.rows, self.columns)
        parts = [header, table]
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": self.rows,
            "columns": self.columns,
            "notes": self.notes,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (tolerates older payloads without columns)."""
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload.get("title", ""),
            rows=payload.get("rows", []),
            columns=payload.get("columns"),
            notes=payload.get("notes", ""),
            metadata=payload.get("metadata", {}),
        )


def save_result(result: ExperimentResult, directory) -> Path:
    """Write an experiment result as JSON + text under ``directory``; returns the JSON path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = result.experiment_id.lower().replace(" ", "_")
    json_path = directory / f"{stem}.json"
    # atomic writes: a killed or concurrent run must never leave a torn file
    # that a later --resume or cache lookup would trust
    atomic_write_text(json_path, json.dumps(result.to_dict(), indent=2, default=float))
    atomic_write_text(directory / f"{stem}.txt", result.to_text() + "\n")
    return json_path


def load_result(path) -> ExperimentResult:
    """Load an :class:`ExperimentResult` previously written by :func:`save_result`."""
    return ExperimentResult.from_dict(json.loads(Path(path).read_text()))
