"""Analysis helpers: tensor distribution studies, per-layer MSE sweeps, reporting."""

from repro.analysis.reporting import ExperimentResult, format_table, save_result
from repro.analysis.distributions import model_tensor_stats, distribution_histograms
from repro.analysis.mse_sweep import layer_activation_mse, LAYER_KINDS_FIG3

__all__ = [
    "ExperimentResult",
    "format_table",
    "save_result",
    "model_tensor_stats",
    "distribution_histograms",
    "layer_activation_mse",
    "LAYER_KINDS_FIG3",
]
