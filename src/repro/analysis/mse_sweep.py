"""Per-layer activation quantisation MSE sweeps (Fig. 3).

Fig. 3 compares the activation quantisation error of BBFP(4,2) under
different shared-exponent selections (Max, Max-1, Max-2, Max-3) against BFP4,
broken down by layer kind (Query / Key / Value / Proj / FC1 / FC2).  The same
sweep here runs on activations recorded from a zoo model; the Llama-style
architecture maps FC1/FC2 to the gate/down projections of its SwiGLU MLP.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import model_activation_samples
from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.core.exponent_selection import ExponentStrategy
from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel
from repro.quant import get_quantizer

__all__ = ["LAYER_KINDS_FIG3", "FIG3_STRATEGIES", "layer_activation_mse"]

#: Paper layer labels mapped to the linear-layer name suffixes of the inference path.
LAYER_KINDS_FIG3 = {
    "Query": ("q_proj",),
    "Key": ("k_proj",),
    "Value": ("v_proj",),
    "Proj": ("out_proj",),
    "FC1": ("gate_proj", "up_proj", "fc1"),
    "FC2": ("down_proj", "fc2"),
}

#: The Fig. 3 candidates: three BBFP(4,2) alignments plus BFP4.
FIG3_STRATEGIES = {
    "Max-2": ExponentStrategy.BBFP_DEFAULT,
    "Max-1": ExponentStrategy.BBFP_PLUS_ONE,
    "Max-3": ExponentStrategy.BBFP_MINUS_ONE,
    "BFP4": None,
}


def _mse(x: np.ndarray, x_hat: np.ndarray) -> float:
    return float(np.mean((x - x_hat) ** 2))


def layer_activation_mse(model: InferenceModel, corpus: SyntheticCorpus,
                         mantissa_bits: int = 4, overlap_bits: int = 2,
                         num_batches: int = 2) -> list:
    """Compute the Fig. 3 rows: one row per layer kind plus the average row.

    Each row maps every strategy label to the activation quantisation MSE of
    that layer kind, normalised per layer kind by the tensor's mean square so
    different layers are comparable.
    """
    samples = model_activation_samples(model, corpus, num_batches=num_batches)
    grouped = {label: [] for label in LAYER_KINDS_FIG3}
    for name, activation in samples.items():
        kind = name.rsplit(".", 1)[-1]
        for label, suffixes in LAYER_KINDS_FIG3.items():
            if kind in suffixes:
                grouped[label].append(activation)

    rows = []
    sums = {label: 0.0 for label in FIG3_STRATEGIES}
    counted = 0
    for label, tensors in grouped.items():
        if not tensors:
            continue
        activation = np.concatenate(tensors, axis=0)
        denom = float(np.mean(activation**2)) or 1.0
        row = {"layer": label}
        for strategy_label, strategy in FIG3_STRATEGIES.items():
            if strategy is None:
                config = BFPConfig(mantissa_bits)
            else:
                config = BBFPConfig(mantissa_bits, overlap_bits, exponent_strategy=strategy)
            # Registry dispatch: the memoized quantizer is shared across layers.
            x_hat = get_quantizer(config).quantize_dequantize(activation, axis=-1)
            row[strategy_label] = _mse(activation, x_hat) / denom
            sums[strategy_label] += row[strategy_label]
        rows.append(row)
        counted += 1

    if counted:
        average = {"layer": "Avg."}
        for strategy_label in FIG3_STRATEGIES:
            average[strategy_label] = sums[strategy_label] / counted
        rows.append(average)
    return rows
