"""Weight/activation distribution analysis (Fig. 1(a)).

The paper motivates wide-dynamic-range formats by showing the OPT-6.7B
weight and activation histograms: weights are tightly concentrated while
activations contain rare but extreme outliers.  These helpers extract the
same statistics from a zoo model so Fig. 1(a) can be regenerated and the
outlier profiles of the synthetic families verified.
"""

from __future__ import annotations

import numpy as np

from repro.core.tensor_stats import TensorStats, absolute_histogram, collect_stats
from repro.llm.dataset import SyntheticCorpus
from repro.llm.inference import InferenceModel

__all__ = ["model_weight_tensors", "model_activation_samples", "model_tensor_stats",
           "distribution_histograms"]

_WEIGHT_SUFFIXES = ("q_proj.weight", "k_proj.weight", "v_proj.weight", "out_proj.weight",
                    "gate_proj.weight", "up_proj.weight", "down_proj.weight",
                    "fc1.weight", "fc2.weight")


def model_weight_tensors(model: InferenceModel) -> dict:
    """All linear-layer weight matrices of a model, keyed by parameter name."""
    return {
        name: tensor
        for name, tensor in model.state.items()
        if name.endswith(_WEIGHT_SUFFIXES)
    }


def model_activation_samples(model: InferenceModel, corpus: SyntheticCorpus,
                             num_batches: int = 2, batch_size: int = 4,
                             seq_len: int = 48) -> dict:
    """Linear-layer input activations collected on held-out batches, keyed by layer name."""
    seq_len = min(seq_len, model.config.max_seq_len - 1)
    with model.record_activations() as records:
        for batch in corpus.sequential_batches("valid", batch_size, seq_len,
                                               max_batches=num_batches):
            model.forward(batch[:, :-1])
    return {name: np.concatenate([t.reshape(-1, t.shape[-1]) for t in tensors], axis=0)
            for name, tensors in records.items()}


def model_tensor_stats(model: InferenceModel, corpus: SyntheticCorpus) -> dict:
    """Aggregate weight/activation statistics of one model (Fig. 1(a) summary numbers).

    Returns ``{"weight": TensorStats, "activation": TensorStats}`` computed
    over the concatenation of all linear-layer weights / activation samples.
    """
    weights = np.concatenate([w.ravel() for w in model_weight_tensors(model).values()])
    activations = np.concatenate(
        [a.ravel() for a in model_activation_samples(model, corpus).values()]
    )
    return {
        "weight": collect_stats(weights, name="weight"),
        "activation": collect_stats(activations, name="activation"),
    }


def distribution_histograms(model: InferenceModel, corpus: SyntheticCorpus, bins: int = 48) -> dict:
    """Absolute-value histograms of weights and activations (the Fig. 1(a) curves)."""
    weights = np.concatenate([w.ravel() for w in model_weight_tensors(model).values()])
    activations = np.concatenate(
        [a.ravel() for a in model_activation_samples(model, corpus).values()]
    )
    weight_edges, weight_counts = absolute_histogram(weights, bins=bins)
    act_edges, act_counts = absolute_histogram(activations, bins=bins)
    return {
        "weight": {"bin_edges": weight_edges, "counts": weight_counts},
        "activation": {"bin_edges": act_edges, "counts": act_counts},
    }
