"""Command-line interface of the BBAL reproduction.

The CLI wraps the pieces a user touches most often so nothing requires writing
Python for a first look at the library::

    python -m repro list                       # experiment catalog
    python -m repro run table1 fig3 --fast     # regenerate selected artefacts
    python -m repro run --fast --jobs 4        # parallel, cached, resumable
    python -m repro formats                    # format comparison table
    python -m repro formats --formats "BBFP(4,2)" BFP6 INT8
    python -m repro quantize --format "BBFP(4,2)" --size 4096
    python -m repro simulate --strategy "BBFP(4,2)" --seq-len 1024
    python -m repro serve-bench --fast         # continuous-batching serve benchmark
    python -m repro cluster-bench --fast       # multi-replica fleet benchmark
    python -m repro chaos-bench --fast         # fault injection + recovery sweep
    python -m repro gateway --fast --port 8100 # HTTP streaming front door (SIGTERM drains)
    python -m repro gateway-bench --fast       # open-loop saturation sweep over HTTP
    python -m repro chaos-bench --fast --trace-out /tmp/chaos.trace.json
    python -m repro obs-report /tmp/chaos.trace.json  # summarise an exported trace

``run`` delegates to the parallel cached pipeline (:mod:`repro.pipeline`,
argument handling shared with :mod:`repro.experiments.runner`); the other
subcommands are thin, dependency-free views over :mod:`repro.core`,
:mod:`repro.hardware` and :mod:`repro.accelerator`.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.reporting import format_table

__all__ = ["main", "build_parser", "parse_format"]


def parse_format(name: str):
    """Resolve a command-line format spec into a format config.

    Deprecated shim: this is now a one-line call into the single parser,
    :func:`repro.quant.parse_spec` (grammar documented there).  Unknown specs
    raise :class:`repro.quant.UnknownFormatError` — a ``ValueError``, which
    ``argparse`` turns into a usage error — with a did-you-mean suggestion.
    """
    from repro.quant import parse_spec

    return parse_spec(name)


_DEFAULT_FORMATS = ("FP16", "INT8", "BFP8", "BFP6", "BFP4", "BBFP(6,3)", "BBFP(4,2)",
                    "BBFP(3,1)", "MXFP4", "MXFP8", "BiE4")


def _cmd_list(args) -> int:
    from repro.experiments.runner import print_catalog

    print_catalog()
    return 0


def _cmd_run(args) -> int:
    from repro.pipeline.cli import run_from_args

    return run_from_args(args)


def _cmd_formats(args) -> int:
    from repro.hardware.mac import mac_unit_for_format
    from repro.hardware.pe import pe_for_strategy
    from repro.quant import get_quantizer

    rows = []
    for name in args.formats:
        quantizer = get_quantizer(name)
        row = {"format": quantizer.name, "spec": quantizer.spec}
        row["equivalent_bits"] = quantizer.bits_per_element()
        row["memory_efficiency"] = quantizer.memory_efficiency()
        try:
            row["mac_area_um2"] = mac_unit_for_format(quantizer.config).area_um2()
        except (TypeError, ValueError):
            row["mac_area_um2"] = float("nan")
        try:
            row["pe_area_um2"] = pe_for_strategy(quantizer.config).area_um2()
        except (TypeError, ValueError):
            row["pe_area_um2"] = float("nan")
        rows.append(row)
    print(format_table(rows))
    return 0


def _cmd_quantize(args) -> int:
    from repro.quant import get_quantizer

    quantizer = get_quantizer(args.format)
    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal(args.size)
    if args.outlier_stride > 0:
        x[:: args.outlier_stride] *= args.outlier_scale

    encoded = quantizer.quantize(x)
    x_hat = encoded.dequantize()
    mse = float(np.mean((x - x_hat) ** 2))
    sqnr = 10.0 * np.log10(float(np.mean(x**2)) / mse) if mse > 0 else float("inf")
    rows = [{
        "format": quantizer.name,
        "elements": args.size,
        "mse": mse,
        "sqnr_db": sqnr,
        "max_abs_error": float(np.max(np.abs(x - x_hat))),
        "memory_bits": encoded.memory_bits(),
    }]
    print(format_table(rows))
    return 0


def _cmd_simulate(args) -> int:
    from repro.accelerator.config import AcceleratorConfig
    from repro.accelerator.simulator import AcceleratorSimulator
    from repro.accelerator.workloads import decoder_workload
    from repro.experiments.fig1_runtime import LLAMA_7B_DIMENSIONS

    strategy = args.strategy if args.strategy in ("Oltron", "Olive") else parse_format(args.strategy)
    config = AcceleratorConfig(strategy=strategy, pe_rows=args.pe_rows, pe_cols=args.pe_cols)
    simulator = AcceleratorSimulator(config, nonlinear_style=args.nonlinear)
    workload = decoder_workload(LLAMA_7B_DIMENSIONS, args.seq_len, phase=args.phase)
    report = simulator.run(workload)
    rows = [{
        "strategy": config.strategy_name,
        "phase": args.phase,
        "seq_len": args.seq_len,
        "total_cycles": report.total_cycles,
        "runtime_ms": report.runtime_s * 1e3,
        "throughput_gmacs": report.throughput_gmacs,
        "nonlinear_share": report.nonlinear_cycles / max(1, report.total_cycles),
        "energy_mj": report.energy.total_j * 1e3,
    }]
    print(format_table(rows))
    return 0


def _parse_kv_spec(name: str):
    """CLI type for ``--kv-specs``: ``fp16``/``none`` (unquantised) or any spec string.

    Returns ``None`` for the unquantised baseline, otherwise the validated
    spec string; unknown specs become clean argparse usage errors like every
    other format option.
    """
    if name.lower() in ("fp16", "none"):
        return None
    from repro.quant import parse_spec

    parse_spec(name)  # raises UnknownFormatError (an ArgumentTypeError) if bad
    return name


def _cmd_serve_bench(args) -> int:
    from repro.analysis.reporting import save_result
    from repro.serve.bench import run as serve_bench_run

    # same driver the pipeline registers; the flags are keyword overrides, so
    # ad-hoc traces keep the full row shape (incl. the kv_perplexity column)
    result = serve_bench_run(fast=args.fast or None, kv_specs=args.kv_specs,
                             num_requests=args.num_requests,
                             arrival_rate=args.arrival_rate,
                             virtual_clock=True if args.virtual_clock else None,
                             kv_page_size=args.kv_page_size,
                             kv_backend=args.kv_backend)
    print(result.to_text())
    if args.output_dir:
        save_result(result, args.output_dir)
    return 0


def _parse_page_size(text: str) -> int:
    """CLI type for ``--kv-page-size``: a positive page length in tokens."""
    size = int(text)
    if size < 1:
        raise argparse.ArgumentTypeError(f"KV page size must be >= 1, got {size}")
    return size


def _parse_policy(name: str) -> str:
    """CLI type for ``--policies``: validated routing-policy name."""
    from repro.cluster import get_policy

    return get_policy(name).name  # raises UnknownPolicyError (usage error) if bad


def _parse_replica_count(text: str) -> int:
    """CLI type for ``--replicas``: a positive fleet size."""
    count = int(text)
    if count < 1:
        raise argparse.ArgumentTypeError(f"fleet size must be >= 1, got {count}")
    return count


def _cmd_cluster_bench(args) -> int:
    from repro.analysis.reporting import save_result
    from repro.cluster.bench import run as cluster_bench_run

    result = cluster_bench_run(fast=args.fast or None, policies=args.policies,
                               replica_counts=args.replicas, kv_specs=args.kv_specs,
                               num_requests=args.num_requests,
                               arrival_rate=args.arrival_rate,
                               workload_kind=args.workload.replace("-", "_"),
                               kv_page_size=args.kv_page_size)
    print(result.to_text())
    if args.output_dir:
        save_result(result, args.output_dir)
    return 0


def _parse_chaos_profile(name: str) -> str:
    """CLI type for ``--profiles``: validated chaos-profile name."""
    from repro.cluster import get_profile

    return get_profile(name).name  # raises UnknownProfileError (usage error) if bad


def _parse_retries(text: str) -> int:
    """CLI type for ``--max-retries``: a retry budget >= 0 (0 = no-retry baseline)."""
    retries = int(text)
    if retries < 0:
        raise argparse.ArgumentTypeError(f"max retries must be >= 0, got {retries}")
    return retries


def _cmd_chaos_bench(args) -> int:
    from repro.analysis.reporting import save_result
    from repro.cluster.chaos_bench import run as chaos_bench_run

    result = chaos_bench_run(fast=args.fast or None, profiles=args.profiles,
                             policies=args.policies, replica_counts=args.replicas,
                             num_requests=args.num_requests,
                             max_retries=args.max_retries, seed=args.seed,
                             trace_path=args.trace_out)
    print(result.to_text())
    if args.output_dir:
        save_result(result, args.output_dir)
    return 0


def _cmd_obs_report(args) -> int:
    import json

    from repro.obs.report import render_report

    try:
        print(render_report(args.path))
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"repro obs-report: error: {error}", file=sys.stderr)
        return 2
    return 0


def _parse_shed_policy(name: str) -> str:
    """CLI type for ``--shed-policy``: validated admission policy name."""
    from repro.gateway.shedding import SHED_POLICIES

    if name not in SHED_POLICIES:
        raise argparse.ArgumentTypeError(
            f"unknown shedding policy {name!r}; expected one of "
            f"{', '.join(SHED_POLICIES)}")
    return name


def _cmd_gateway(args) -> int:
    import asyncio

    from repro.experiments.common import is_fast_mode
    from repro.gateway.bench import default_gateway_config, gateway_model_name
    from repro.gateway.driver import Gateway
    from repro.gateway.server import serve_gateway
    from repro.llm.zoo import default_corpus, load_inference_model
    from repro.serve.bench import default_engine_config
    from repro.serve.engine import ServeEngine, WallClock

    import dataclasses

    fast = is_fast_mode(args.fast or None)
    model_name = gateway_model_name(fast)
    model = load_inference_model(model_name, corpus=default_corpus(fast=fast))
    engine_config = default_engine_config(fast)
    engine_overrides = {}
    if args.kv_backend is not None:
        engine_overrides["kv_backend"] = args.kv_backend
    if args.kv_page_size is not None:
        engine_overrides["kv_page_size"] = args.kv_page_size
    if engine_overrides:
        engine_config = dataclasses.replace(engine_config, **engine_overrides)
    gateway_config = default_gateway_config(fast, args.shed_policy)
    if args.max_queue_depth is not None:
        gateway_config = dataclasses.replace(gateway_config,
                                             max_queue_depth=args.max_queue_depth)
    if args.timeout_s is not None:
        gateway_config = dataclasses.replace(gateway_config,
                                             default_timeout_s=args.timeout_s)
    engine = ServeEngine(model, engine_config, clock=WallClock())
    gateway = Gateway(engine, gateway_config)
    print(f"serving {model_name} ({engine_config.kv_backend} KV backend, "
          f"shed policy {gateway_config.shed_policy}); SIGTERM drains gracefully")
    asyncio.run(serve_gateway(gateway, host=args.host, port=args.port))
    return 0


def _cmd_gateway_bench(args) -> int:
    from repro.analysis.reporting import save_result
    from repro.gateway.bench import run as gateway_bench_run

    result = gateway_bench_run(fast=args.fast or None, rates=args.rates,
                               num_requests=args.num_requests,
                               shed_policy=args.shed_policy,
                               cancel_every=args.cancel_every,
                               timeout_s=args.timeout_s,
                               max_queue_depth=args.max_queue_depth)
    print(result.to_text())
    if args.output_dir:
        save_result(result, args.output_dir)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="regenerate paper tables/figures (parallel, cached)")
    from repro.pipeline.cli import add_run_arguments

    add_run_arguments(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_formats = sub.add_parser("formats", help="compare number formats (bits, memory, MAC/PE area)")
    p_formats.add_argument("--formats", nargs="+", type=parse_format,
                           default=list(_DEFAULT_FORMATS))
    p_formats.set_defaults(func=_cmd_formats)

    p_quant = sub.add_parser("quantize", help="quantise a synthetic tensor and report the error")
    p_quant.add_argument("--format", required=True, type=parse_format,
                         help='spec string, e.g. "BBFP(4,2)", bfp8@b32, int8, fp8_e4m3, mxfp4, bie4')
    p_quant.add_argument("--size", type=int, default=4096)
    p_quant.add_argument("--outlier-stride", type=int, default=128)
    p_quant.add_argument("--outlier-scale", type=float, default=30.0)
    p_quant.add_argument("--seed", type=int, default=0)
    p_quant.set_defaults(func=_cmd_quantize)

    p_sim = sub.add_parser("simulate", help="simulate one Llama-7B decoder layer stack")
    p_sim.add_argument("--strategy", default="BBFP(4,2)",
                       help='number format or named baseline ("Oltron", "Olive")')
    p_sim.add_argument("--seq-len", type=int, default=1024)
    p_sim.add_argument("--phase", choices=("prefill", "decode"), default="prefill")
    p_sim.add_argument("--pe-rows", type=int, default=32)
    p_sim.add_argument("--pe-cols", type=int, default=32)
    p_sim.add_argument("--nonlinear", choices=("bbal", "fp32"), default="bbal")
    p_sim.set_defaults(func=_cmd_simulate)

    p_serve = sub.add_parser(
        "serve-bench",
        help="continuous-batching serve benchmark (KV cache formats, TTFT/latency/tokens-per-s)")
    p_serve.add_argument("--fast", action="store_true",
                         help="small zoo model and short request trace")
    p_serve.add_argument("--kv-specs", nargs="+", default=None, type=_parse_kv_spec,
                         help='KV storage formats to compare, e.g. fp16 "bfp8@b32" int8')
    p_serve.add_argument("--num-requests", type=int, default=None,
                         help="length of the synthetic request trace")
    p_serve.add_argument("--arrival-rate", type=float, default=None,
                         help="offered load in requests per second (Poisson arrivals)")
    p_serve.add_argument("--virtual-clock", action="store_true",
                         help="deterministic token-rate clock instead of wall time "
                              "(the default in fast mode)")
    p_serve.add_argument("--kv-backend", choices=("paged", "contiguous"), default=None,
                         help="KV cache layout: paged (block pool + radix prefix "
                              "sharing, the default) or contiguous (dense fallback)")
    p_serve.add_argument("--kv-page-size", type=_parse_page_size, default=None,
                         help="tokens per KV page under the paged backend "
                              "(fast mode defaults to a small page so paging "
                              "paths are exercised)")
    p_serve.add_argument("--output-dir", default=None,
                         help="also save the result as JSON + text under this directory")
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_cluster = sub.add_parser(
        "cluster-bench",
        help="multi-replica fleet benchmark (routing policies, SLO attainment, imbalance)")
    p_cluster.add_argument("--fast", action="store_true",
                           help="small zoo model, small fleets and a short trace")
    p_cluster.add_argument("--policies", nargs="+", default=None, type=_parse_policy,
                           help="routing policies to sweep, e.g. round_robin least_loaded")
    p_cluster.add_argument("--replicas", nargs="+", default=None, type=_parse_replica_count,
                           help="fleet sizes to sweep, e.g. 1 2 4 8")
    p_cluster.add_argument("--kv-specs", nargs="+", default=None, type=_parse_kv_spec,
                           help='KV storage formats per fleet, e.g. fp16 "bfp8@b32" int8')
    p_cluster.add_argument("--num-requests", type=int, default=None,
                           help="length of the synthetic request trace")
    p_cluster.add_argument("--arrival-rate", type=float, default=None,
                           help="offered load in requests per second "
                                "(default: derived from the roofline cost model)")
    p_cluster.add_argument("--workload", choices=("poisson", "shared-prefix"),
                           default="poisson",
                           help="trace shape: independent Poisson prompts, or "
                                "shared-prefix traffic that exercises radix "
                                "prefix sharing and prefix_affinity routing")
    p_cluster.add_argument("--kv-page-size", type=_parse_page_size, default=None,
                           help="tokens per KV page on every replica")
    p_cluster.add_argument("--output-dir", default=None,
                           help="also save the result as JSON + text under this directory")
    p_cluster.set_defaults(func=_cmd_cluster_bench)

    p_chaos = sub.add_parser(
        "chaos-bench",
        help="fleet chaos benchmark (crash/slow/partition faults, retry-with-reroute, "
             "recovery and zero-loss audits)")
    p_chaos.add_argument("--fast", action="store_true",
                         help="small zoo model, none+crash profiles, small fleets")
    p_chaos.add_argument("--profiles", nargs="+", default=None, type=_parse_chaos_profile,
                         help="chaos profiles to sweep: none crash slow partition mixed")
    p_chaos.add_argument("--policies", nargs="+", default=None, type=_parse_policy,
                         help="routing policies to compare under identical faults")
    p_chaos.add_argument("--replicas", nargs="+", default=None, type=_parse_replica_count,
                         help="fleet sizes to sweep, e.g. 2 4 8")
    p_chaos.add_argument("--num-requests", type=int, default=None,
                         help="length of the synthetic request trace")
    p_chaos.add_argument("--max-retries", type=_parse_retries, default=2,
                         help="reroute budget per crash-orphaned request "
                              "(0 = no-retry baseline, orphans are reported lost)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="seed for the fault schedules (and routing RNG)")
    p_chaos.add_argument("--output-dir", default=None,
                         help="also save the result as JSON + text under this directory")
    p_chaos.add_argument("--trace-out", default=None,
                         help="also export a Chrome trace-event JSON of one crash run "
                              "(open in Perfetto, or summarise with 'repro obs-report')")
    p_chaos.set_defaults(func=_cmd_chaos_bench)

    p_obs = sub.add_parser(
        "obs-report",
        help="summarise an exported observability artefact (Chrome trace JSON "
             "from --trace-out, or a profiler hot-spot snapshot)")
    p_obs.add_argument("path", help="path to the trace/profile JSON file")
    p_obs.set_defaults(func=_cmd_obs_report)

    p_gateway = sub.add_parser(
        "gateway",
        help="serve one engine over HTTP (SSE streaming, cancellation, load shedding)")
    p_gateway.add_argument("--fast", action="store_true",
                           help="small zoo model and CI-sized engine")
    p_gateway.add_argument("--host", default="127.0.0.1")
    p_gateway.add_argument("--port", type=int, default=8100,
                           help="TCP port to listen on (0 = ephemeral)")
    p_gateway.add_argument("--shed-policy", type=_parse_shed_policy, default="reject",
                           help="admission policy: reject, drop_oldest or deadline")
    p_gateway.add_argument("--max-queue-depth", type=int, default=None,
                           help="bounded engine queue beyond which requests shed")
    p_gateway.add_argument("--timeout-s", type=float, default=None,
                           help="default per-request deadline in seconds")
    p_gateway.add_argument("--kv-backend", choices=("paged", "contiguous"), default=None,
                           help="KV cache layout for the served engine")
    p_gateway.add_argument("--kv-page-size", type=_parse_page_size, default=None,
                           help="tokens per KV page under the paged backend")
    p_gateway.set_defaults(func=_cmd_gateway)

    p_gwbench = sub.add_parser(
        "gateway-bench",
        help="open-loop HTTP saturation sweep (goodput knee, shed rate, cancel reclaim)")
    p_gwbench.add_argument("--fast", action="store_true",
                           help="small zoo model, short traces, four offered rates")
    p_gwbench.add_argument("--rates", nargs="+", type=float, default=None,
                           help="offered loads to sweep in requests per second")
    p_gwbench.add_argument("--num-requests", type=int, default=None,
                           help="requests replayed per offered rate")
    p_gwbench.add_argument("--shed-policy", type=_parse_shed_policy, default=None,
                           help="admission policy under overload")
    p_gwbench.add_argument("--cancel-every", type=int, default=None,
                           help="cancel every N-th request mid-stream (0 = never; "
                                "default: every 4th)")
    p_gwbench.add_argument("--timeout-s", type=float, default=None,
                           help="per-request deadline attached by the load generator")
    p_gwbench.add_argument("--max-queue-depth", type=int, default=None,
                           help="bounded engine queue beyond which requests shed")
    p_gwbench.add_argument("--output-dir", default=None,
                           help="also save the result as JSON + text under this directory")
    p_gwbench.set_defaults(func=_cmd_gateway_bench)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
