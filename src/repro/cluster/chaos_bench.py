"""The ``chaos_bench`` experiment: chaos profile x routing policy x fleet size.

One driver run replays the *same* saturating trace through a simulated fleet
once per (chaos profile, policy, replica count) combination.  Each non-empty
profile draws a :class:`~repro.cluster.chaos.FaultSchedule` deterministically
from the sweep seed and the run's expected busy period, so crashes, slow
replicas and router partitions land mid-trace — and the schedules are
serialised into the result metadata, making any row replayable bit-for-bit.

The rows answer the recovery questions the happy-path ``cluster_bench``
cannot: how much goodput survives a crash once retry-with-reroute re-prefills
the orphans elsewhere (``goodput_recovered`` is the fraction of the same
fleet's fault-free goodput), how long the slowest fault takes to fully
recover (``max_recovery_s``), and — the invariants — that ``requests_lost``
stays 0 with retries enabled and ``kv_leaked_pages`` stays 0 on every
surviving replica.

Registered as ``chaos_bench`` in the experiment runner (cached parallel
pipeline, ``repro run chaos_bench --fast``) and reachable directly as
``repro chaos-bench``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.reporting import ExperimentResult
from repro.cluster.autoscaler import AutoscalerConfig
from repro.cluster.bench import (
    _mean_tokens,
    cluster_model_name,
    default_replica,
    default_workload,
    derived_slo,
    saturating_arrival_rate,
)
from repro.cluster.chaos import FaultSchedule, get_profile, list_profiles
from repro.cluster.replica import ReplicaConfig, decode_time_per_token
from repro.cluster.simulation import ClusterConfig, ClusterSimulation
from repro.obs import Observability
from repro.serve.workload import WorkloadConfig, generate_trace

__all__ = ["DEFAULT_PROFILES", "DEFAULT_POLICIES", "DEFAULT_REPLICA_COUNTS",
           "fault_horizon", "chaos_bench", "export_chaos_trace", "run"]

#: Chaos profiles swept by default (full mode sweeps the whole registry);
#: ``"none"`` anchors the ``goodput_recovered`` column.
DEFAULT_PROFILES = ("none", "crash", "slow", "partition", "mixed")

#: Routing policies compared by default under chaos.
DEFAULT_POLICIES = ("round_robin", "least_loaded")

#: Fleet sizes compared by default.
DEFAULT_REPLICA_COUNTS = (2, 4)


def fault_horizon(model_config, replica: ReplicaConfig, workload,
                  num_replicas: int) -> float:
    """Virtual seconds the run is expected to stay busy.

    Anchors a profile's fractional fault windows to the run: the larger of
    the trace's arrival span and the fleet's roofline-priced service time,
    so generated faults strike while the fleet is working rather than after
    it has drained.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    time_per_token = decode_time_per_token(model_config, replica)
    _, mean_total = _mean_tokens(workload)
    service_s = workload.num_requests * mean_total * time_per_token / num_replicas
    arrival_span = (workload.num_requests / workload.arrival_rate
                    if getattr(workload, "arrival_rate", None) else 0.0)
    return max(service_s, arrival_span, 1e-9)


#: Summary columns copied into each benchmark row, in display order.
_ROW_METRICS = ("requests", "goodput_rps", "slo_attainment",
                "faults_injected", "requests_orphaned", "requests_retried",
                "requests_lost", "max_recovery_s", "kv_leaked_pages",
                "decode_tokens_per_s", "ttft_p95_ms", "latency_p95_ms")


def chaos_bench(model, profiles=DEFAULT_PROFILES, policies=DEFAULT_POLICIES,
                replica_counts=DEFAULT_REPLICA_COUNTS, workload=None,
                replica: ReplicaConfig = None, utilization: float = 3.0,
                slo_slack: float = 4.0, arrival_rate: float = None,
                max_retries: int = 2, seed: int = 0,
                schedules: dict = None) -> list:
    """Sweep chaos profile x policy x fleet size over one replayed trace.

    The trace is generated once and every fleet replays it, so row
    differences isolate the chaos profile, the policy and the fleet size.
    Each (profile, fleet size) pair draws one :class:`FaultSchedule` from
    ``seed`` — identical across policies, so policies are compared under
    literally the same faults.  ``goodput_recovered`` divides each row's
    goodput by the same (policy, fleet size) row under the ``"none"``
    profile when that baseline is part of the sweep.

    Pass a dict as ``schedules`` to receive the generated schedules keyed
    ``"<profile>x<count>"`` (serialised form; what :func:`run` stores in the
    result metadata for replay).
    """
    workload = workload or WorkloadConfig()
    template = replica or ReplicaConfig()
    baseline = dataclasses.replace(template, kv_spec=None, weight_spec=None)
    if arrival_rate is None:
        arrival_rate = saturating_arrival_rate(model.config, baseline, workload,
                                               utilization=utilization)
    workload = dataclasses.replace(workload, arrival_rate=arrival_rate)
    slo = derived_slo(model.config, baseline, workload, slo_slack=slo_slack)
    requests = generate_trace(model.config.vocab_size, workload)
    rows = []
    baselines = {}  # (policy, count) -> fault-free goodput
    for profile_name in profiles:
        profile = get_profile(profile_name)
        for count in replica_counts:
            horizon = fault_horizon(model.config, baseline, workload, count)
            schedule = FaultSchedule.generate(profile, count, horizon, seed=seed)
            if schedules is not None:
                schedules[f"{profile.name}x{count}"] = schedule.to_dict()
            for policy in policies:
                fleet = tuple(template for _ in range(count))
                simulation = ClusterSimulation(
                    model, ClusterConfig(replicas=fleet, policy=policy, slo=slo,
                                         seed=seed, faults=schedule,
                                         max_retries=max_retries))
                summary = simulation.run(requests).summary()
                if profile.name == "none":
                    baselines[(policy, count)] = summary["goodput_rps"]
                baseline_goodput = baselines.get((policy, count))
                row = {
                    "chaos_profile": profile.name,
                    "policy": summary["policy"],
                    "replicas": count,
                }
                row.update((key, summary[key]) for key in _ROW_METRICS)
                row["goodput_recovered"] = (
                    summary["goodput_rps"] / baseline_goodput
                    if baseline_goodput else None)
                rows.append(row)
    return rows


def export_chaos_trace(model, path=None, workload=None,
                       replica: Optional[ReplicaConfig] = None,
                       num_replicas: int = 2, policy: str = "least_loaded",
                       max_retries: int = 2, seed: int = 0,
                       utilization: float = 3.0, slo_slack: float = 4.0) -> tuple:
    """One fully-observed crash run; optionally write its Chrome trace JSON.

    Replays the same saturating-trace construction as :func:`chaos_bench`
    through a single fleet under the ``crash`` profile, with a full
    :class:`~repro.obs.Observability` bundle attached and an autoscaler
    pinned at ``min_replicas=num_replicas`` — so the crash repair shows up
    as explicit ``scale:up`` events.  The export puts the router's instants
    (faults, reroutes, scale decisions) and every replica's per-request
    spans on one shared virtual timeline that Perfetto loads directly.

    Returns ``(report, obs)``; when ``path`` is given the trace-event JSON
    is also written there (the ``repro chaos-bench --trace-out`` artifact,
    readable by ``repro obs-report``).
    """
    workload = workload or WorkloadConfig()
    template = replica or ReplicaConfig()
    baseline = dataclasses.replace(template, kv_spec=None, weight_spec=None)
    arrival_rate = saturating_arrival_rate(model.config, baseline, workload,
                                           utilization=utilization)
    workload = dataclasses.replace(workload, arrival_rate=arrival_rate)
    slo = derived_slo(model.config, baseline, workload, slo_slack=slo_slack)
    requests = generate_trace(model.config.vocab_size, workload)
    horizon = fault_horizon(model.config, baseline, workload, num_replicas)
    schedule = FaultSchedule.generate(get_profile("crash"), num_replicas,
                                      horizon, seed=seed)
    obs = Observability.enabled()
    fleet = tuple(template for _ in range(num_replicas))
    autoscaler = AutoscalerConfig(min_replicas=num_replicas,
                                  max_replicas=num_replicas + 2)
    simulation = ClusterSimulation(
        model, ClusterConfig(replicas=fleet, policy=policy, slo=slo, seed=seed,
                             faults=schedule, max_retries=max_retries,
                             autoscaler=autoscaler), obs=obs)
    report = simulation.run(requests)
    if path is not None:
        obs.tracer.write(path)
    return report, obs


def run(fast=None, profiles=None, policies=None, replica_counts=None,
        num_requests=None, max_retries: int = 2, seed: int = 0,
        trace_path=None) -> ExperimentResult:
    """Fleet chaos recovery: crash/slow/partition faults x routing policy x fleet size.

    The registered ``chaos_bench`` experiment driver (the pipeline calls it
    with ``fast`` only).  Fast mode runs the ``none`` and ``crash`` profiles
    over small Llama-1B fleets; the full run sweeps every registered chaos
    profile over larger Llama-7B fleets.  The keyword overrides back the
    ``repro chaos-bench`` CLI flags.  With the default ``max_retries`` the
    sweep must end with ``requests_lost`` 0 and ``kv_leaked_pages`` 0 in
    every row — CI greps the saved JSON for exactly that.
    """
    from repro.experiments.common import is_fast_mode
    from repro.llm.zoo import default_corpus, load_inference_model

    fast_mode = is_fast_mode(fast)
    model_name = cluster_model_name(fast_mode)
    corpus = default_corpus(fast=fast)
    model = load_inference_model(model_name, corpus=corpus)
    if profiles is None:
        profiles = ("none", "crash") if fast_mode else list_profiles()
    if policies is None:
        policies = ("least_loaded",) if fast_mode else DEFAULT_POLICIES
    if replica_counts is None:
        replica_counts = (2, 4) if fast_mode else DEFAULT_REPLICA_COUNTS
    overrides = {}
    if num_requests is not None:
        overrides["num_requests"] = num_requests
    workload = dataclasses.replace(default_workload(fast_mode, "poisson"),
                                   **overrides)
    template = default_replica(fast_mode)
    schedules = {}
    rows = chaos_bench(model, profiles=tuple(profiles), policies=tuple(policies),
                       replica_counts=tuple(replica_counts), workload=workload,
                       replica=template, max_retries=max_retries, seed=seed,
                       schedules=schedules)
    extra_metadata = {}
    if trace_path is not None:
        export_chaos_trace(model, trace_path, workload=workload, replica=template,
                           num_replicas=min(replica_counts),
                           policy=tuple(policies)[0],
                           max_retries=max_retries, seed=seed)
        extra_metadata["trace_path"] = str(trace_path)
    return ExperimentResult(
        experiment_id="Chaos-Bench",
        title=f"Fleet chaos recovery of {model_name}: fault profile x policy x fleet size",
        rows=rows,
        columns=["chaos_profile", "policy", "replicas"] + list(_ROW_METRICS)
                + ["goodput_recovered"],
        notes=(
            "Every row replays the identical saturating trace; each (profile, fleet "
            "size) pair draws one seeded FaultSchedule, replayed under every policy, "
            "so policies are compared under literally the same faults.  A crash "
            "orphans the victim's queue and decode slots and destroys its KV pages; "
            "retry-with-reroute re-prefills each orphan on a surviving replica "
            "(bounded by max_retries), which is why goodput_recovered under the "
            "crash profile stays high while requests_lost stays 0.  Slow replicas "
            "drag the latency percentiles without orphaning anything; partitions "
            "starve a replica of new work while it keeps decoding.  max_recovery_s "
            "is the slowest fault's time until everything it orphaned reached a "
            "terminal state.  kv_leaked_pages audits every surviving replica's "
            "paged cache after the run — any non-zero value is a refcounting bug, "
            "not a tuning problem."
        ),
        metadata={
            "fast": fast_mode,
            "model": model_name,
            "profiles": [get_profile(p).name for p in profiles],
            "policies": list(policies),
            "replica_counts": list(replica_counts),
            "max_retries": max_retries,
            "seed": seed,
            "workload": dataclasses.asdict(workload),
            "schedules": schedules,
            "profile_shapes": {get_profile(p).name: get_profile(p).to_dict()
                               for p in profiles},
            **extra_metadata,
        },
    )
