"""Deterministic fault injection for the fleet simulator.

Chaos engineering asks "what breaks first at scale?" the same way the rest
of this repo asks "how fast?": with seeded, replayable experiments.  This
module supplies the fault model:

* :class:`FaultEvent` — one fault on the shared virtual timeline.  Three
  kinds are modelled:

  - ``"crash"`` — the replica dies at ``time_s``: every KV page it held is
    lost, every queued or decoding request is orphaned, and the replica
    never returns.  The simulation retries orphans on surviving replicas
    (bounded by :attr:`~repro.cluster.simulation.ClusterConfig.max_retries`,
    re-prefilling from scratch since the KV chain died with the machine) or
    reports them lost — never silently.
  - ``"slow"`` — a degraded replica: for ``duration_s`` the replica's
    roofline clock runs ``factor`` times slower (a thermal throttle, a
    noisy neighbour, a failing DIMM).  Admitted work still finishes,
    just late.
  - ``"partition"`` — the router loses the replica for ``duration_s``:
    no new requests are routed to it, but work already on the replica keeps
    running (the classic gray failure, distinct from a crash).

* :class:`FaultSchedule` — an ordered, serialisable collection of events.
  :meth:`FaultSchedule.generate` draws one deterministically from a
  :class:`ChaosProfile` and a seed; :meth:`~FaultSchedule.to_dict` /
  :meth:`~FaultSchedule.from_dict` round-trip through JSON so a chaos run
  can be replayed bit-for-bit from its saved benchmark metadata.

* :class:`ChaosProfile` — the shape of a chaos experiment (how many
  crashes / slowdowns / partitions, how severe, in which fraction of the
  run).  Named profiles (``"none"``, ``"crash"``, ``"slow"``,
  ``"partition"``, ``"mixed"``) live in a registry resolved by
  :func:`get_profile` with the same did-you-mean ergonomics as the routing
  and quantiser registries.

The invariant the whole layer is audited against: every submitted request
ends in **exactly one** terminal state (completed, retried-then-completed,
or explicitly reported lost), and every surviving replica passes a clean
:meth:`~repro.serve.engine.ServeEngine.audit_kv_pages` after every run.
"""

from __future__ import annotations

import argparse
import difflib
from dataclasses import dataclass, field, fields

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "ChaosProfile",
    "UnknownProfileError",
    "CHAOS_PROFILES",
    "get_profile",
    "list_profiles",
]

#: The fault kinds the simulator can inject.
FAULT_KINDS = ("crash", "slow", "partition")

#: Deterministic processing order of fault kinds that share an instant.
_KIND_ORDER = {kind: index for index, kind in enumerate(FAULT_KINDS)}


@dataclass(frozen=True)
class FaultEvent:
    """One fault on the virtual timeline.

    ``time_s`` is the injection instant on the shared fleet clock;
    ``replica_id`` targets a replica by id (events aimed at a replica that
    no longer exists — already crashed, or retired — are recorded as
    not applied).  ``duration_s`` bounds ``slow``/``partition`` windows;
    ``factor`` is the ``slow`` clock multiplier (4.0 = four times slower).
    """

    time_s: float
    kind: str
    replica_id: int
    duration_s: float = None
    factor: float = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not np.isfinite(self.time_s) or self.time_s < 0:
            raise ValueError("time_s must be a finite instant >= 0")
        if self.replica_id < 0:
            raise ValueError("replica_id must be >= 0")
        if self.kind == "crash":
            if self.duration_s is not None or self.factor is not None:
                raise ValueError("a crash is permanent: duration_s/factor do not apply")
        else:
            if self.duration_s is None or self.duration_s <= 0:
                raise ValueError(f"a {self.kind} fault needs duration_s > 0")
        if self.kind == "slow" and (self.factor is None or self.factor <= 0):
            raise ValueError("a slow fault needs factor > 0")
        if self.kind == "partition" and self.factor is not None:
            raise ValueError("factor does not apply to partitions")

    def to_dict(self) -> dict:
        return {"time_s": self.time_s, "kind": self.kind,
                "replica_id": self.replica_id, "duration_s": self.duration_s,
                "factor": self.factor}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        return cls(**{f.name: payload.get(f.name) for f in fields(cls)})


class FaultSchedule:
    """An ordered, replayable set of :class:`FaultEvent` entries.

    Events are kept sorted by ``(time_s, kind, replica_id)`` so two
    schedules built from the same events compare (and replay) identically
    whatever order they were listed in.  The schedule is immutable.
    """

    def __init__(self, events=()):
        events = tuple(events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"FaultSchedule holds FaultEvent entries, got {event!r}")
        self.events = tuple(sorted(
            events, key=lambda e: (e.time_s, _KIND_ORDER[e.kind], e.replica_id)))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSchedule) and self.events == other.events

    def __repr__(self) -> str:
        return f"FaultSchedule({list(self.events)!r})"

    def to_dict(self) -> dict:
        """JSON-serialisable dump; the replay format saved by ``chaos_bench``."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSchedule":
        return cls(FaultEvent.from_dict(entry) for entry in payload["events"])

    @classmethod
    def generate(cls, profile, num_replicas: int, horizon_s: float,
                 seed: int = 0) -> "FaultSchedule":
        """Draw a schedule deterministically from a profile and a seed.

        ``horizon_s`` anchors the profile's fractional windows to real
        (virtual) seconds — typically the expected busy period of the run.
        Crash targets are drawn without replacement and capped at
        ``num_replicas - 1``, so an initial fleet is never fully crashed by
        a generated schedule (hand-built schedules may still do that; the
        simulation then reports the stranded requests as lost rather than
        hanging).  Same arguments, same schedule — bit for bit.
        """
        profile = get_profile(profile)
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if not np.isfinite(horizon_s) or horizon_s <= 0:
            raise ValueError("horizon_s must be positive and finite")
        rng = np.random.default_rng(seed)

        def instant() -> float:
            return float(rng.uniform(profile.window_start, profile.window_end) * horizon_s)

        events = []
        crashes = min(profile.crashes, num_replicas - 1)
        for replica_id in rng.permutation(num_replicas)[:crashes]:
            events.append(FaultEvent(time_s=instant(), kind="crash",
                                     replica_id=int(replica_id)))
        for _ in range(profile.slowdowns):
            events.append(FaultEvent(
                time_s=instant(), kind="slow",
                replica_id=int(rng.integers(num_replicas)),
                duration_s=profile.slow_window * horizon_s,
                factor=profile.slow_factor))
        for _ in range(profile.partitions):
            events.append(FaultEvent(
                time_s=instant(), kind="partition",
                replica_id=int(rng.integers(num_replicas)),
                duration_s=profile.partition_window * horizon_s))
        return cls(events)


@dataclass(frozen=True)
class ChaosProfile:
    """The shape of one chaos experiment.

    ``crashes`` / ``slowdowns`` / ``partitions`` count the events to draw;
    ``slow_factor`` is the degraded clock multiplier; ``slow_window`` and
    ``partition_window`` size those faults' durations as fractions of the
    schedule horizon; events are injected between ``window_start`` and
    ``window_end`` (fractions of the horizon), keeping faults inside the
    busy period rather than after the trace has drained.
    """

    name: str = "custom"
    crashes: int = 0
    slowdowns: int = 0
    partitions: int = 0
    slow_factor: float = 4.0
    slow_window: float = 0.3
    partition_window: float = 0.3
    window_start: float = 0.15
    window_end: float = 0.7

    def __post_init__(self):
        if min(self.crashes, self.slowdowns, self.partitions) < 0:
            raise ValueError("fault counts must be >= 0")
        if self.slow_factor <= 0:
            raise ValueError("slow_factor must be positive")
        if not 0.0 < self.slow_window <= 1.0 or not 0.0 < self.partition_window <= 1.0:
            raise ValueError("fault windows must be fractions in (0, 1]")
        if not 0.0 <= self.window_start < self.window_end <= 1.0:
            raise ValueError("need 0 <= window_start < window_end <= 1")

    @property
    def num_faults(self) -> int:
        return self.crashes + self.slowdowns + self.partitions

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosProfile":
        return cls(**{f.name: payload[f.name] for f in fields(cls) if f.name in payload})


#: Named chaos profiles the benchmark sweeps (``"none"`` is the fault-free
#: baseline every other profile's goodput is compared against).
CHAOS_PROFILES = {
    "none": ChaosProfile(name="none"),
    "crash": ChaosProfile(name="crash", crashes=1),
    "slow": ChaosProfile(name="slow", slowdowns=1),
    "partition": ChaosProfile(name="partition", partitions=1),
    "mixed": ChaosProfile(name="mixed", crashes=1, slowdowns=1, partitions=1),
}


class UnknownProfileError(ValueError, argparse.ArgumentTypeError):
    """Raised for a chaos-profile name the registry does not know.

    Doubles as an :class:`argparse.ArgumentTypeError` so a bad
    ``--profiles`` flag becomes a clean usage error, did-you-mean included
    — the same shape as :class:`repro.cluster.router.UnknownPolicyError`.
    """

    def __init__(self, name):
        self.name = name
        message = f"unknown chaos profile {name!r}"
        matches = difflib.get_close_matches(str(name).lower(), list(CHAOS_PROFILES),
                                            n=1, cutoff=0.5)
        if matches:
            message += f" (did you mean {matches[0]!r}?)"
        super().__init__(message)


def get_profile(name) -> ChaosProfile:
    """Resolve a profile name (case/separator-insensitive) or pass an instance through."""
    if isinstance(name, ChaosProfile):
        return name
    key = str(name).strip().lower().replace("-", "_").replace(" ", "_")
    profile = CHAOS_PROFILES.get(key)
    if profile is None:
        raise UnknownProfileError(name)
    return profile


def list_profiles() -> tuple:
    """Registered chaos-profile names, in registration order."""
    return tuple(CHAOS_PROFILES)
