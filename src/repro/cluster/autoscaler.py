"""SLO-aware fleet autoscaling on queue depth and rolling TTFT p95.

The :class:`Autoscaler` is a pure decision function over fleet observations:
the simulation feeds it every completion (:meth:`Autoscaler.observe`) and
asks for a verdict at control points (:meth:`Autoscaler.decide`).  It scales
**up** when the fleet is falling behind — queued requests per replica exceed
the target, or the rolling time-to-first-token p95 breaches the SLO — and
**down** when the fleet is demonstrably idle: empty queues and a rolling p95
comfortably inside the SLO.  A cooldown suppresses flapping between
consecutive decisions.  The autoscaler never touches replicas itself; the
simulation owns the fleet and implements "down" as *drain then retire*
(stop routing to the victim, let it finish its admitted work), so scale-down
can never drop an in-flight request.

Under chaos (:mod:`repro.cluster.chaos`) the autoscaler is also the fleet's
repair loop: a replica crash can push the routable count under
``min_replicas``, and :meth:`Autoscaler.decide` replaces that capacity
immediately — the below-minimum check bypasses the cooldown, because a
cooldown that blocks crash recovery would turn one fault into an outage.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.stats import percentile_summary

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling targets and guardrails.

    ``target_queue_per_replica`` is the backlog (waiting requests per
    routable replica) above which the fleet scales up.  ``ttft_slo_s``
    optionally adds a latency trigger: rolling TTFT p95 above the SLO scales
    up, p95 under ``downscale_margin`` of the SLO (with empty queues)
    permits scale-down.  ``window`` bounds the rolling sample;
    ``cooldown_s`` is the minimum (virtual) time between scaling actions.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    target_queue_per_replica: float = 4.0
    ttft_slo_s: float = None
    downscale_margin: float = 0.5
    window: int = 32
    cooldown_s: float = 0.0

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.target_queue_per_replica <= 0:
            raise ValueError("target_queue_per_replica must be positive")
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive")
        if not 0.0 < self.downscale_margin <= 1.0:
            raise ValueError("downscale_margin must be in (0, 1]")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


class Autoscaler:
    """Rolling-window scaling decisions for one simulation run."""

    def __init__(self, config: AutoscalerConfig = None, ttft_slo_s: float = None):
        self.config = config or AutoscalerConfig()
        # an explicit SLO in the config wins; otherwise inherit the cluster's
        self.ttft_slo_s = (self.config.ttft_slo_s
                           if self.config.ttft_slo_s is not None else ttft_slo_s)
        self._ttft = deque(maxlen=self.config.window)
        self._last_action_time = None

    def observe(self, completed) -> None:
        """Feed one completed request into the rolling TTFT window."""
        self._ttft.append(completed.time_to_first_token_s)

    def rolling_ttft_p95_s(self) -> float:
        """TTFT p95 over the rolling window (``nan`` before any completion)."""
        return percentile_summary(self._ttft, "ttft", percentiles=(95,))["ttft_p95"]

    def decide(self, now: float, queue_depth: int, num_replicas: int):
        """``"up"``, ``"down"`` or ``None`` for the current fleet state.

        ``queue_depth`` counts waiting (not yet admitted) requests across the
        routable fleet; ``num_replicas`` is the routable replica count.  A
        non-``None`` verdict starts the cooldown — the caller is expected to
        act on it.
        """
        config = self.config
        if num_replicas < config.min_replicas:
            # Crashed below the floor: replace capacity immediately — a
            # cooldown must never leave the fleet under its minimum.
            self._last_action_time = now
            return "up"
        if (self._last_action_time is not None
                and now - self._last_action_time < config.cooldown_s):
            return None
        p95 = self.rolling_ttft_p95_s()
        backlog = queue_depth / max(1, num_replicas)
        slo_breached = self.ttft_slo_s is not None and p95 > self.ttft_slo_s
        if num_replicas < config.max_replicas and (
                backlog > config.target_queue_per_replica or slo_breached):
            self._last_action_time = now
            return "up"
        slo_comfortable = (self.ttft_slo_s is None
                           or p95 <= config.downscale_margin * self.ttft_slo_s)
        if num_replicas > config.min_replicas and queue_depth == 0 and slo_comfortable:
            self._last_action_time = now
            return "down"
        return None
