"""Multi-replica serving cluster: routing, autoscaling, fleet simulation.

One :class:`~repro.serve.engine.ServeEngine` is a single machine; this
package is the fleet layer a deployment serving heavy traffic needs:

* :mod:`repro.cluster.replica` — a :class:`Replica` wrapping an engine with
  per-replica KV/weight quantisation specs and a
  :class:`~repro.serve.engine.VirtualClock` whose token rate comes from the
  :mod:`repro.accelerator.roofline` cost model, so heterogeneous replicas
  run at genuinely different simulated speeds;
* :mod:`repro.cluster.router` — a decorator registry of routing policies
  (``round_robin``, ``least_loaded``, ``join_shortest_queue``,
  ``power_of_two``, ``prefix_affinity``), mirroring the
  :mod:`repro.quant` registry pattern;
* :mod:`repro.cluster.autoscaler` — SLO-aware scale-up/down on queue depth
  and rolling TTFT p95, with drain-then-retire semantics;
* :mod:`repro.cluster.simulation` — a deterministic event-driven
  co-simulation of the fleet on a shared virtual timeline, producing a
  :class:`ClusterReport` (goodput, SLO attainment, load imbalance,
  per-replica breakdowns);
* :mod:`repro.cluster.bench` — the ``cluster_bench`` experiment sweeping
  policy x fleet size x KV format over one replayed Poisson trace;
* :mod:`repro.cluster.chaos` — deterministic fault injection
  (:class:`FaultSchedule` of crash / slow / partition events drawn from
  named :class:`ChaosProfile` registries) with retry-with-reroute in the
  simulation and the ``chaos_bench`` recovery sweep.

See ``docs/cluster.md`` for the architecture and benchmark interpretation,
and ``docs/chaos.md`` for the fault model and its invariants.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.bench import cluster_bench
from repro.cluster.chaos import (
    CHAOS_PROFILES,
    ChaosProfile,
    FaultEvent,
    FaultSchedule,
    UnknownProfileError,
    get_profile,
    list_profiles,
)
from repro.cluster.chaos_bench import chaos_bench
from repro.cluster.replica import Replica, ReplicaConfig, decode_time_per_token
from repro.cluster.router import (
    RoutingPolicy,
    UnknownPolicyError,
    get_policy,
    list_policies,
    register_policy,
)
from repro.cluster.simulation import (
    ClusterConfig,
    ClusterReport,
    ClusterSimulation,
    SLOConfig,
    homogeneous_fleet,
)

__all__ = [
    "Replica",
    "ReplicaConfig",
    "decode_time_per_token",
    "RoutingPolicy",
    "UnknownPolicyError",
    "register_policy",
    "get_policy",
    "list_policies",
    "Autoscaler",
    "AutoscalerConfig",
    "SLOConfig",
    "ClusterConfig",
    "ClusterSimulation",
    "ClusterReport",
    "homogeneous_fleet",
    "cluster_bench",
    "FaultEvent",
    "FaultSchedule",
    "ChaosProfile",
    "UnknownProfileError",
    "CHAOS_PROFILES",
    "get_profile",
    "list_profiles",
    "chaos_bench",
]
