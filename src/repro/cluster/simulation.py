"""Deterministic event-driven co-simulation of a multi-replica fleet.

The simulation steps every replica on a shared virtual timeline: each
replica's :class:`~repro.serve.engine.VirtualClock` is its own busy-time
axis, and the event loop always advances whichever pending event is earliest
— the next trace arrival, or the lagging replica's next engine step
(:attr:`~repro.serve.engine.ServeEngine.next_event_time`).  Dispatching an
arrival therefore happens only once every busy replica has simulated past
the arrival instant, so routing policies observe the fleet load *as of the
arrival time*, and two runs with the same trace and seed replay the exact
same interleaving — the :class:`ClusterReport` is bit-for-bit reproducible.

Arrivals are routed by a registered policy (:mod:`repro.cluster.router`),
optionally under an SLO-aware autoscaler (:mod:`repro.cluster.autoscaler`):
scale-up clones the first replica template at the current instant, scale-down
drains the least-loaded replica (no new routing, admitted work finishes)
and retires it once empty.  The report aggregates fleet goodput, SLO
attainment, load imbalance and per-replica breakdowns.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.core.stats import load_imbalance, percentile_summary
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.replica import Replica, ReplicaConfig
from repro.cluster.router import get_policy

__all__ = ["SLOConfig", "ClusterConfig", "ClusterSimulation", "ClusterReport",
           "homogeneous_fleet"]


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objectives a completed request is graded against.

    ``None`` disables a bound.  A request *attains* the SLO when its
    time-to-first-token and end-to-end latency are both within bounds;
    fleet goodput counts only attaining requests.
    """

    ttft_s: float = None
    latency_s: float = None

    def __post_init__(self):
        if self.ttft_s is not None and self.ttft_s <= 0:
            raise ValueError("ttft_s must be positive")
        if self.latency_s is not None and self.latency_s <= 0:
            raise ValueError("latency_s must be positive")

    def attained(self, completed) -> bool:
        if self.ttft_s is not None and completed.time_to_first_token_s > self.ttft_s:
            return False
        if self.latency_s is not None and completed.latency_s > self.latency_s:
            return False
        return True


def homogeneous_fleet(num_replicas: int, **replica_kwargs) -> tuple:
    """``num_replicas`` identical :class:`ReplicaConfig` entries."""
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    return tuple(ReplicaConfig(**replica_kwargs) for _ in range(num_replicas))


@dataclass(frozen=True)
class ClusterConfig:
    """One fleet: initial replicas, routing policy, SLOs, optional autoscaler.

    ``replicas`` is the starting fleet (heterogeneous configs welcome); the
    autoscaler, when present, clones ``replicas[0]`` for every scale-up.
    ``seed`` feeds the routing policy's RNG.
    """

    replicas: tuple
    policy: str = "round_robin"
    slo: SLOConfig = field(default_factory=SLOConfig)
    autoscaler: AutoscalerConfig = None
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "replicas", tuple(self.replicas))
        if not self.replicas:
            raise ValueError("a cluster needs at least one replica")


@dataclass
class ClusterReport:
    """Outcome of one fleet run: completions, per-replica rows, scale events."""

    policy: str
    completed: list  # (replica_id, CompletedRequest)
    elapsed_s: float
    steps: int
    slo: SLOConfig
    replicas: list  # per-replica breakdown dicts (Replica.describe())
    scale_events: list  # {"time_s", "action", "replica_id"}

    def summary(self) -> dict:
        """The fleet-level row: goodput, SLO attainment, imbalance, latencies.

        ``replicas`` counts every replica that ever existed (autoscaled runs
        include scaled-up and retired ones — ``scale_ups``/``scale_downs``
        say how the fleet got there), and ``load_imbalance`` compares total
        decode tokens across that same set, so a late-started replica
        legitimately shows as under-loaded.  For fixed fleets both match the
        configured size and the instantaneous balance.
        """
        done = [c for _, c in self.completed]
        attained = [c for c in done if self.slo.attained(c)]
        elapsed = max(self.elapsed_s, 1e-12)
        decode_tokens = sum(r["decode_tokens"] for r in self.replicas)
        prefill_tokens = sum(r["prefill_tokens"] for r in self.replicas)
        reused_tokens = sum(r.get("reused_prefix_tokens", 0) for r in self.replicas)
        prompt_tokens = reused_tokens + prefill_tokens
        return {
            "policy": self.policy,
            "replicas": len(self.replicas),
            "requests": len(done),
            "elapsed_s": self.elapsed_s,
            "prefill_tokens": prefill_tokens,
            "decode_tokens": decode_tokens,
            "decode_tokens_per_s": decode_tokens / elapsed,
            "total_tokens_per_s": (prefill_tokens + decode_tokens) / elapsed,
            "goodput_rps": len(attained) / elapsed,
            "slo_attainment": (len(attained) / len(done)) if done else float("nan"),
            "load_imbalance": load_imbalance(r["decode_tokens"] for r in self.replicas),
            "prefix_hit_rate": (reused_tokens / prompt_tokens) if prompt_tokens else 0.0,
            "peak_pages_in_use": sum(r.get("peak_pages_in_use", 0)
                                     for r in self.replicas),
            "kv_peak_memory_mib": sum(r.get("kv_peak_memory_mib", 0.0)
                                      for r in self.replicas),
            **percentile_summary((c.time_to_first_token_s for c in done),
                                 "ttft", scale=1e3, unit="ms"),
            **percentile_summary((c.latency_s for c in done),
                                 "latency", scale=1e3, unit="ms"),
            "scale_ups": sum(1 for e in self.scale_events if e["action"] == "up"),
            "scale_downs": sum(1 for e in self.scale_events if e["action"] == "down"),
        }

    def to_dict(self) -> dict:
        """Full JSON-serialisable dump (exact-reproduction comparisons)."""
        return {
            "policy": self.policy,
            "elapsed_s": self.elapsed_s,
            "steps": self.steps,
            "slo": {"ttft_s": self.slo.ttft_s, "latency_s": self.slo.latency_s},
            "completed": [
                {
                    "replica_id": replica_id,
                    "request_id": c.request.request_id,
                    "generated_tokens": list(c.generated_tokens),
                    "finish_reason": c.finish_reason,
                    "arrival_time": c.arrival_time,
                    "admitted_time": c.admitted_time,
                    "first_token_time": c.first_token_time,
                    "finish_time": c.finish_time,
                }
                for replica_id, c in self.completed
            ],
            "replicas": list(self.replicas),
            "scale_events": list(self.scale_events),
            "summary": self.summary(),
        }


class ClusterSimulation:
    """Drive one fleet over one request trace, deterministically."""

    def __init__(self, model, config: ClusterConfig):
        self.model = model
        self.config = config
        self.policy = get_policy(config.policy, seed=config.seed)
        self.replicas = [Replica(index, model, replica_config)
                         for index, replica_config in enumerate(config.replicas)]
        self.retired = []
        self.autoscaler = (Autoscaler(config.autoscaler, ttft_slo_s=config.slo.ttft_s)
                           if config.autoscaler is not None else None)
        self.scale_events = []
        self.completed = []
        self._next_replica_id = len(self.replicas)
        self._steps = 0

    # ------------------------------------------------------------ event loop
    def run(self, requests, max_steps: int = None) -> ClusterReport:
        """Replay ``requests`` (any order) through the fleet; returns the report."""
        arrivals = deque(sorted(requests,
                                key=lambda r: (r.arrival_time, r.request_id)))
        while arrivals or self._has_work():
            if max_steps is not None and self._steps >= max_steps:
                raise RuntimeError(
                    f"cluster did not drain within {max_steps} steps "
                    f"({len(arrivals)} arrivals pending)"
                )
            self._advance(arrivals)
        return self.report()

    def _has_work(self) -> bool:
        return any(replica.has_work for replica in self.replicas)

    def _advance(self, arrivals) -> None:
        """Process the earliest pending event: one arrival or one engine step."""
        next_arrival = arrivals[0].arrival_time if arrivals else math.inf
        busy = [replica for replica in self.replicas if replica.has_work]
        if busy:
            replica = min(busy, key=lambda r: (r.next_event_time, r.replica_id))
            if next_arrival <= replica.next_event_time:
                self._dispatch(arrivals.popleft())
            else:
                self._step(replica)
        else:
            self._dispatch(arrivals.popleft())
        self._retire_drained()

    def _step(self, replica: Replica) -> None:
        for done in replica.step():
            self.completed.append((replica.replica_id, done))
            if self.autoscaler is not None:
                self.autoscaler.observe(done)
        self._steps += 1

    def _dispatch(self, request) -> None:
        if self.autoscaler is not None:
            self._autoscale(request.arrival_time)
        candidates = [replica for replica in self.replicas if not replica.draining]
        self.policy.choose(request, candidates).submit(request)

    # ------------------------------------------------------------- autoscale
    def _routable(self) -> list:
        return [replica for replica in self.replicas if not replica.draining]

    def _autoscale(self, now: float) -> None:
        routable = self._routable()
        action = self.autoscaler.decide(
            now,
            queue_depth=sum(replica.queue_depth for replica in routable),
            num_replicas=len(routable),
        )
        if action == "up":
            replica = Replica(self._next_replica_id, self.model,
                              self.config.replicas[0], start_time=now)
            self._next_replica_id += 1
            self.replicas.append(replica)
            self.scale_events.append(
                {"time_s": now, "action": "up", "replica_id": replica.replica_id})
        elif action == "down":
            # drain the least-loaded routable replica: admitted work finishes,
            # nothing new is routed to it, retired once empty
            victim = min(routable, key=lambda r: (r.projected_load, -r.replica_id))
            victim.draining = True
            self.scale_events.append(
                {"time_s": now, "action": "down", "replica_id": victim.replica_id})

    def _retire_drained(self) -> None:
        for replica in [r for r in self.replicas if r.draining and not r.has_work]:
            replica.retired = True
            self.replicas.remove(replica)
            self.retired.append(replica)

    # ------------------------------------------------------------- reporting
    def report(self) -> ClusterReport:
        fleet = sorted(self.replicas + self.retired, key=lambda r: r.replica_id)
        elapsed = max((replica.now for replica in fleet), default=0.0)
        return ClusterReport(
            policy=self.policy.name,
            completed=list(self.completed),
            elapsed_s=elapsed,
            steps=self._steps,
            slo=self.config.slo,
            replicas=[replica.describe() for replica in fleet],
            scale_events=list(self.scale_events),
        )
