"""Deterministic event-driven co-simulation of a multi-replica fleet.

The simulation steps every replica on a shared virtual timeline: each
replica's :class:`~repro.serve.engine.VirtualClock` is its own busy-time
axis, and the event loop always advances whichever pending event is earliest
— the next fault from the :class:`~repro.cluster.chaos.FaultSchedule`, the
next trace arrival, or the lagging replica's next engine step
(:attr:`~repro.serve.engine.ServeEngine.next_event_time`).  Dispatching an
arrival therefore happens only once every busy replica has simulated past
the arrival instant, so routing policies observe the fleet load *as of the
arrival time*, and two runs with the same trace and seed replay the exact
same interleaving — the :class:`ClusterReport` is bit-for-bit reproducible.

Arrivals are routed by a registered policy (:mod:`repro.cluster.router`),
optionally under an SLO-aware autoscaler (:mod:`repro.cluster.autoscaler`):
scale-up clones the first replica template at the current instant, scale-down
drains the least-loaded replica (no new routing, admitted work finishes)
and retires it once empty.  The report aggregates fleet goodput, SLO
attainment, load imbalance and per-replica breakdowns.

Chaos (:mod:`repro.cluster.chaos`) rides the same timeline.  A fault event
beats an arrival or an engine step at the same instant, and within an
instant faults apply in schedule order, so chaos runs replay exactly like
fault-free ones.  The fault semantics:

* **crash** — the replica is removed from the fleet; its KV pages are gone
  and its in-flight requests are orphaned.  Each orphan is retried through
  the router on the surviving fleet (keeping its original ``arrival_time``,
  so queueing-during-recovery shows up in its latency and the re-prefill is
  priced again on the new replica) until
  :attr:`ClusterConfig.max_retries` is exhausted, after which it is
  *explicitly* recorded as lost — never silently dropped.
* **slow** — the replica's roofline clock is degraded by a factor for a
  window; admitted work finishes late rather than being orphaned.
* **partition** — the router cannot reach the replica for a window: it gets
  no new requests but keeps decoding what it has.  If *every* replica is
  unreachable, the arrival is deferred to the earliest heal instant instead
  of being dropped.

Two invariants are enforced at the end of every :meth:`ClusterSimulation.run`
(violations raise, they are not merely reported): every submitted request
reaches exactly one terminal state — completed or explicitly lost — and
every surviving replica passes a clean
:meth:`~repro.serve.engine.ServeEngine.audit_kv_pages`.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.core.stats import load_imbalance, percentile_summary
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.chaos import FaultSchedule
from repro.cluster.replica import Replica, ReplicaConfig
from repro.cluster.router import get_policy
from repro.obs import Observability, invariant_violation

__all__ = ["SLOConfig", "ClusterConfig", "ClusterSimulation", "ClusterReport",
           "homogeneous_fleet"]


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objectives a completed request is graded against.

    ``None`` disables a bound.  A request *attains* the SLO when its
    time-to-first-token and end-to-end latency are both within bounds;
    fleet goodput counts only attaining requests.
    """

    ttft_s: Optional[float] = None
    latency_s: Optional[float] = None

    def __post_init__(self):
        if self.ttft_s is not None and self.ttft_s <= 0:
            raise ValueError("ttft_s must be positive")
        if self.latency_s is not None and self.latency_s <= 0:
            raise ValueError("latency_s must be positive")

    def attained(self, completed) -> bool:
        if self.ttft_s is not None and completed.time_to_first_token_s > self.ttft_s:
            return False
        if self.latency_s is not None and completed.latency_s > self.latency_s:
            return False
        return True


def homogeneous_fleet(num_replicas: int, **replica_kwargs) -> tuple:
    """``num_replicas`` identical :class:`ReplicaConfig` entries."""
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    return tuple(ReplicaConfig(**replica_kwargs) for _ in range(num_replicas))


@dataclass(frozen=True)
class ClusterConfig:
    """One fleet: initial replicas, routing policy, SLOs, optional autoscaler.

    ``replicas`` is the starting fleet (heterogeneous configs welcome); the
    autoscaler, when present, clones ``replicas[0]`` for every scale-up.
    ``seed`` feeds the routing policy's RNG.  ``faults`` is an optional
    :class:`~repro.cluster.chaos.FaultSchedule` (any iterable of
    :class:`~repro.cluster.chaos.FaultEvent` is accepted and normalised);
    ``max_retries`` bounds how many times a crash-orphaned request is
    rerouted before it is explicitly reported lost — 0 is the no-retry
    baseline where every orphan is lost.
    """

    replicas: tuple
    policy: str = "round_robin"
    slo: SLOConfig = field(default_factory=SLOConfig)
    autoscaler: Optional[AutoscalerConfig] = None
    seed: int = 0
    faults: Optional[FaultSchedule] = None
    max_retries: int = 2

    def __post_init__(self):
        object.__setattr__(self, "replicas", tuple(self.replicas))
        if not self.replicas:
            raise ValueError("a cluster needs at least one replica")
        if self.faults is not None and not isinstance(self.faults, FaultSchedule):
            object.__setattr__(self, "faults", FaultSchedule(self.faults))
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass
class ClusterReport:
    """Outcome of one fleet run: completions, per-replica rows, scale events.

    Chaos runs additionally carry the fault log (``fault_events``, each entry
    noting whether it applied and — for crashes — how many requests it
    orphaned and how long recovery took), the explicit loss ledger
    (``lost``), retry counters, and the fleet-wide KV-page leak count from
    auditing every surviving replica.
    """

    policy: str
    completed: list  # (replica_id, CompletedRequest)
    elapsed_s: float
    steps: int
    slo: SLOConfig
    replicas: list  # per-replica breakdown dicts (Replica.describe())
    scale_events: list  # {"time_s", "action", "replica_id"}
    fault_events: list = field(default_factory=list)  # chaos log, schedule order
    lost: list = field(default_factory=list)  # {"request_id","reason","time_s","retries"}
    requests_orphaned: int = 0
    requests_retried: int = 0
    retries_total: int = 0
    kv_leaked_pages: int = 0

    def summary(self) -> dict:
        """The fleet-level row: goodput, SLO attainment, imbalance, latencies.

        ``replicas`` counts every replica that ever existed (autoscaled runs
        include scaled-up and retired ones — ``scale_ups``/``scale_downs``
        say how the fleet got there; chaos runs include crashed ones), and
        ``load_imbalance`` compares total decode tokens across that same
        set, so a late-started replica legitimately shows as under-loaded.
        For fixed fleets both match the configured size and the
        instantaneous balance.  The fault-aware columns keep the loss
        ledger visible: ``requests_lost`` is the count of *explicitly*
        reported losses (always 0 outside chaos), and ``max_recovery_s``
        is the slowest crash's time-to-terminal over everything it
        orphaned (0.0 when nothing crashed).
        """
        done = [c for _, c in self.completed]
        attained = [c for c in done if self.slo.attained(c)]
        elapsed = max(self.elapsed_s, 1e-12)
        decode_tokens = sum(r["decode_tokens"] for r in self.replicas)
        prefill_tokens = sum(r["prefill_tokens"] for r in self.replicas)
        reused_tokens = sum(r.get("reused_prefix_tokens", 0) for r in self.replicas)
        prompt_tokens = reused_tokens + prefill_tokens
        return {
            "policy": self.policy,
            "replicas": len(self.replicas),
            "requests": len(done),
            "elapsed_s": self.elapsed_s,
            "prefill_tokens": prefill_tokens,
            "decode_tokens": decode_tokens,
            "decode_tokens_per_s": decode_tokens / elapsed,
            "total_tokens_per_s": (prefill_tokens + decode_tokens) / elapsed,
            "goodput_rps": len(attained) / elapsed,
            "slo_attainment": (len(attained) / len(done)) if done else float("nan"),
            "load_imbalance": load_imbalance(r["decode_tokens"] for r in self.replicas),
            "prefix_hit_rate": (reused_tokens / prompt_tokens) if prompt_tokens else 0.0,
            "peak_pages_in_use": sum(r.get("peak_pages_in_use", 0)
                                     for r in self.replicas),
            "kv_peak_memory_mib": sum(r.get("kv_peak_memory_mib", 0.0)
                                      for r in self.replicas),
            **percentile_summary((c.time_to_first_token_s for c in done),
                                 "ttft", scale=1e3, unit="ms"),
            **percentile_summary((c.latency_s for c in done),
                                 "latency", scale=1e3, unit="ms"),
            "scale_ups": sum(1 for e in self.scale_events if e["action"] == "up"),
            "scale_downs": sum(1 for e in self.scale_events if e["action"] == "down"),
            "faults_injected": sum(1 for e in self.fault_events if e.get("applied")),
            "requests_orphaned": self.requests_orphaned,
            "requests_retried": self.requests_retried,
            "retries_total": self.retries_total,
            "requests_lost": len(self.lost),
            "max_recovery_s": max((e.get("recovery_s", 0.0)
                                   for e in self.fault_events), default=0.0),
            "kv_leaked_pages": self.kv_leaked_pages,
        }

    def to_dict(self) -> dict:
        """Full JSON-serialisable dump (exact-reproduction comparisons)."""
        return {
            "policy": self.policy,
            "elapsed_s": self.elapsed_s,
            "steps": self.steps,
            "slo": {"ttft_s": self.slo.ttft_s, "latency_s": self.slo.latency_s},
            "completed": [
                {
                    "replica_id": replica_id,
                    "request_id": c.request.request_id,
                    "generated_tokens": list(c.generated_tokens),
                    "finish_reason": c.finish_reason,
                    "arrival_time": c.arrival_time,
                    "admitted_time": c.admitted_time,
                    "first_token_time": c.first_token_time,
                    "finish_time": c.finish_time,
                }
                for replica_id, c in self.completed
            ],
            "replicas": list(self.replicas),
            "scale_events": list(self.scale_events),
            "fault_events": list(self.fault_events),
            "lost": list(self.lost),
            "summary": self.summary(),
        }


class ClusterSimulation:
    """Drive one fleet over one request trace, deterministically."""

    #: Trace track 0 is the router/fleet timeline; replica ``r`` gets track
    #: ``r + 1`` (see :meth:`_replica_obs`), so one export shows the router's
    #: instants above every replica's request spans.
    ROUTER_TRACK = 0

    def __init__(self, model, config: ClusterConfig,
                 obs: Optional[Observability] = None):
        self.model = model
        self.config = config
        self.policy = get_policy(config.policy, seed=config.seed)
        self.obs = obs if obs is not None else Observability.disabled()
        self._tracer = self.obs.tracer
        self._recorder = self.obs.recorder
        if self._tracer is not None:
            self._tracer.name_track(self.ROUTER_TRACK, "router")
        registry = self.obs.registry
        labels = self.obs.labels
        self._m_dispatched = registry.counter(
            "cluster_dispatches_total", "Arrivals routed to a replica", labels)
        self._m_rerouted = registry.counter(
            "cluster_reroutes_total",
            "Crash-orphaned requests pushed back through the router", labels)
        self._m_deferred = registry.counter(
            "cluster_deferred_arrivals_total",
            "Arrivals held at the router until a partition heals", labels)
        self._m_lost = registry.counter(
            "cluster_requests_lost_total", "Explicitly recorded losses", labels)
        self._m_faults = {
            kind: registry.counter("cluster_faults_total",
                                   "Injected faults that applied",
                                   dict(labels, kind=kind))
            for kind in ("crash", "slow", "partition")
        }
        self._m_scale = {
            action: registry.counter("cluster_scale_events_total",
                                     "Autoscaler decisions",
                                     dict(labels, action=action))
            for action in ("up", "down")
        }
        self.replicas = [Replica(index, model, replica_config,
                                 obs=self._replica_obs(index))
                         for index, replica_config in enumerate(config.replicas)]
        self.retired = []
        self.crashed = []
        self.autoscaler = (Autoscaler(config.autoscaler, ttft_slo_s=config.slo.ttft_s)
                           if config.autoscaler is not None else None)
        self.scale_events = []
        self.completed = []
        self._next_replica_id = len(self.replicas)
        self._steps = 0
        # chaos bookkeeping
        self._arrivals = []  # heap of (time_s, seq, attempt, Request)
        self._arrival_seq = 0
        self._faults = deque()
        self._fault_log = []
        self._lost = []
        self._attempts = {}  # request_id -> retries consumed so far
        self._orphaned = 0
        self._retries_total = 0
        self._watches = []  # open crash-recovery windows
        self._expected_ids = []

    def _replica_obs(self, replica_id: int) -> Optional[Observability]:
        """Per-replica view of the shared bundle (or ``None`` when disabled).

        Every replica shares the registry (series split by the ``replica``
        label), the tracer (own track: replica id + 1, so track 0 stays the
        router's) and the flight recorder.
        """
        if not self.obs.is_enabled:
            return None
        return self.obs.for_track(replica_id + 1, replica=f"r{replica_id}")

    def _record(self, time_s: float, kind: str, **fields) -> None:
        if self._recorder is not None:
            self._recorder.record(time_s, kind, **fields)

    # ------------------------------------------------------------ event loop
    def run(self, requests, max_steps: Optional[int] = None) -> ClusterReport:
        """Replay ``requests`` (any order) through the fleet; returns the report.

        Raises ``RuntimeError`` if the run violates a chaos invariant:
        a submitted request that reached no (or more than one) terminal
        state, or a surviving replica whose page audit shows a leak.
        """
        for request in sorted(requests, key=lambda r: (r.arrival_time, r.request_id)):
            self._expected_ids.append(request.request_id)
            self._push_arrival(request.arrival_time, request, attempt=0)
        self._schedule_faults()
        while self._arrivals or self._faults or self._has_work():
            if max_steps is not None and self._steps >= max_steps:
                raise RuntimeError(
                    f"cluster did not drain within {max_steps} steps "
                    f"({len(self._arrivals)} arrivals pending)"
                )
            self._advance()
        self._verify_run()
        return self.report()

    def _schedule_faults(self) -> None:
        """Expand the fault schedule into timeline points (once per run).

        Each ``slow`` fault contributes its start and its restore point; the
        points are processed in ``(time, expansion-order)`` order so ties
        resolve identically on every replay.
        """
        if not self.config.faults:
            return
        points = []
        for index, event in enumerate(self.config.faults):
            points.append((event.time_s, 2 * index, event.kind, event))
            if event.kind == "slow":
                points.append((event.time_s + event.duration_s,
                               2 * index + 1, "slow_end", event))
        self._faults = deque(sorted(points, key=lambda p: (p[0], p[1])))

    def _has_work(self) -> bool:
        return any(replica.has_work for replica in self.replicas)

    def _push_arrival(self, time_s: float, request, attempt: int) -> None:
        heapq.heappush(self._arrivals, (time_s, self._arrival_seq, attempt, request))
        self._arrival_seq += 1

    def _advance(self) -> None:
        """Process the earliest pending event: a fault, an arrival or a step.

        A fault beats an arrival or an engine step at the same instant
        (the crash happens *before* the router would have placed the
        request there); an arrival still beats a step at the same instant,
        preserving the fault-free interleaving exactly.
        """
        next_arrival = self._arrivals[0][0] if self._arrivals else math.inf
        next_fault = self._faults[0][0] if self._faults else math.inf
        busy = [replica for replica in self.replicas if replica.has_work]
        lagging = (min(busy, key=lambda r: (r.next_event_time, r.replica_id))
                   if busy else None)
        horizon = lagging.next_event_time if busy else math.inf
        if next_fault <= next_arrival and next_fault <= horizon:
            self._apply_fault(self._faults.popleft())
        elif next_arrival <= horizon:
            self._dispatch(heapq.heappop(self._arrivals))
        else:
            self._step(lagging)
        self._retire_drained()

    def _step(self, replica: Replica) -> None:
        for done in replica.step():
            self.completed.append((replica.replica_id, done))
            self._note_terminal(done.request.request_id, done.finish_time)
            if self.autoscaler is not None:
                self.autoscaler.observe(done)
        self._steps += 1

    def _dispatch(self, entry) -> None:
        time_s, _seq, attempt, request = entry
        if self.autoscaler is not None:
            self._autoscale(time_s)
        candidates = [replica for replica in self.replicas
                      if not replica.draining and replica.reachable(time_s)]
        if not candidates:
            wake = min((replica.partition_end_after(time_s)
                        for replica in self.replicas if not replica.draining),
                       default=math.inf)
            if math.isfinite(wake):
                # every routable replica is partitioned: hold the request at
                # the router and retry at the earliest heal instant
                self._push_arrival(wake, request, attempt)
                self._m_deferred.inc()
                self._record(time_s, "deferred",
                             request_id=request.request_id, until=wake)
                if self._tracer is not None:
                    self._tracer.instant(
                        "deferred", time_s, self.ROUTER_TRACK,
                        args={"request_id": request.request_id, "until": wake})
                return
            fallback = [replica for replica in self.replicas
                        if replica.draining and replica.reachable(time_s)]
            if not fallback:
                self._lose(request, attempt, time_s, "no_replicas")
                return
            candidates = fallback  # a draining replica beats losing the request
        # the delivery instant floors admission: a rerouted orphan or a
        # deferred arrival must not be admitted before the router had it
        target = self.policy.choose(request, candidates)
        target.submit(request, not_before=time_s)
        self._m_dispatched.inc()
        if attempt > 0:
            self._m_rerouted.inc()
            self._record(time_s, "reroute", request_id=request.request_id,
                         attempt=attempt, replica_id=target.replica_id)
            if self._tracer is not None:
                self._tracer.instant(
                    "reroute", time_s, self.ROUTER_TRACK,
                    args={"request_id": request.request_id, "attempt": attempt,
                          "replica_id": target.replica_id})
        else:
            self._record(time_s, "dispatch", request_id=request.request_id,
                         replica_id=target.replica_id)

    # ----------------------------------------------------------------- chaos
    def _apply_fault(self, point) -> None:
        time_s, _order, action, event = point
        replica = next((r for r in self.replicas if r.replica_id == event.replica_id),
                       None)
        if action == "slow_end":
            if replica is not None:
                replica.set_slowdown(1.0)
            return
        log = {"time_s": time_s, "kind": event.kind,
               "replica_id": event.replica_id, "applied": replica is not None}
        if event.duration_s is not None:
            log["duration_s"] = event.duration_s
        if replica is None:
            # the target already crashed or retired — record the no-op so
            # the fault log still mirrors the schedule one-for-one
            self._fault_log.append(log)
            return
        self._m_faults[event.kind].inc()
        self._record(time_s, f"fault:{event.kind}", replica_id=event.replica_id)
        if self._tracer is not None:
            self._tracer.instant(f"fault:{event.kind}", time_s, self.ROUTER_TRACK,
                                 args={"replica_id": event.replica_id})
        if action == "crash":
            orphans = replica.crash(time_s)
            self.replicas.remove(replica)
            self.crashed.append(replica)
            log["orphaned"] = len(orphans)
            log["recovery_s"] = 0.0
            watch = {"pending": set(), "time_s": time_s, "log": log}
            for request in orphans:
                self._orphaned += 1
                attempt = self._attempts.get(request.request_id, 0)
                if attempt < self.config.max_retries:
                    self._attempts[request.request_id] = attempt + 1
                    self._retries_total += 1
                    watch["pending"].add(request.request_id)
                    self._push_arrival(time_s, request, attempt + 1)
                else:
                    self._lose(request, attempt, time_s, "retries_exhausted")
            if watch["pending"]:
                self._watches.append(watch)
        elif action == "slow":
            replica.set_slowdown(event.factor)
            log["factor"] = event.factor
        elif action == "partition":
            replica.partition(time_s, time_s + event.duration_s)
        self._fault_log.append(log)

    def _lose(self, request, attempt: int, time_s: float, reason: str) -> None:
        """Record an explicit loss — the only way a request leaves unfinished."""
        self._lost.append({"request_id": request.request_id, "reason": reason,
                           "time_s": time_s, "retries": attempt})
        self._note_terminal(request.request_id, time_s)
        self._m_lost.inc()
        self._record(time_s, "lost", request_id=request.request_id, reason=reason)
        if self._tracer is not None:
            self._tracer.instant("lost", time_s, self.ROUTER_TRACK,
                                 args={"request_id": request.request_id,
                                       "reason": reason})

    def _note_terminal(self, request_id, time_s: float) -> None:
        """Close crash-recovery windows: a watched orphan reached a terminal state."""
        for watch in self._watches:
            if request_id in watch["pending"]:
                watch["pending"].discard(request_id)
                watch["log"]["recovery_s"] = max(watch["log"]["recovery_s"],
                                                 time_s - watch["time_s"])

    def _verify_run(self) -> None:
        """Enforce the chaos invariants; raise rather than report quietly.

        When a flight recorder is attached, the raised
        :class:`~repro.obs.recorder.InvariantViolation` (a ``RuntimeError``
        subclass, so existing handlers keep working) automatically carries
        the recorder's recent-event window — the forensic context of how the
        run got into the bad state.
        """
        terminal = sorted([c.request.request_id for _, c in self.completed]
                          + [entry["request_id"] for entry in self._lost])
        if terminal != sorted(self._expected_ids):
            raise invariant_violation(
                "conservation violation: submitted requests and terminal states "
                f"disagree ({len(self._expected_ids)} submitted, "
                f"{len(self.completed)} completed, {len(self._lost)} lost)",
                self._recorder)
        for replica in self.replicas + self.retired:
            audit = replica.engine.audit_kv_pages()
            if audit["leaked"]:
                raise invariant_violation(
                    f"replica {replica.replica_id} leaked KV pages after the "
                    f"run: {audit['leaked']}", self._recorder)

    # ------------------------------------------------------------- autoscale
    def _routable(self) -> list:
        return [replica for replica in self.replicas if not replica.draining]

    def _autoscale(self, now: float) -> None:
        routable = self._routable()
        action = self.autoscaler.decide(
            now,
            queue_depth=sum(replica.queue_depth for replica in routable),
            num_replicas=len(routable),
        )
        if action == "up":
            replica = Replica(self._next_replica_id, self.model,
                              self.config.replicas[0], start_time=now,
                              obs=self._replica_obs(self._next_replica_id))
            self._next_replica_id += 1
            self.replicas.append(replica)
            self.scale_events.append(
                {"time_s": now, "action": "up", "replica_id": replica.replica_id})
            self._note_scale_event(now, "up", replica.replica_id)
        elif action == "down":
            # drain the least-loaded routable replica: admitted work finishes,
            # nothing new is routed to it, retired once empty
            victim = min(routable, key=lambda r: (r.projected_load, -r.replica_id))
            victim.draining = True
            self.scale_events.append(
                {"time_s": now, "action": "down", "replica_id": victim.replica_id})
            self._note_scale_event(now, "down", victim.replica_id)

    def _note_scale_event(self, now: float, action: str, replica_id: int) -> None:
        self._m_scale[action].inc()
        self._record(now, f"scale:{action}", replica_id=replica_id)
        if self._tracer is not None:
            self._tracer.instant(f"scale:{action}", now, self.ROUTER_TRACK,
                                 args={"replica_id": replica_id})

    def _retire_drained(self) -> None:
        for replica in [r for r in self.replicas if r.draining and not r.has_work]:
            replica.retired = True
            self.replicas.remove(replica)
            self.retired.append(replica)

    # ------------------------------------------------------------- reporting
    def report(self) -> ClusterReport:
        fleet = sorted(self.replicas + self.retired + self.crashed,
                       key=lambda r: r.replica_id)
        elapsed = max((replica.now for replica in fleet), default=0.0)
        rows = []
        leaked = 0
        for replica in fleet:
            row = replica.describe()
            if replica.crashed:
                # the pages died with the machine; there is nothing to audit
                row["kv_leaked_pages"] = None
            else:
                audit = replica.engine.audit_kv_pages()
                row["kv_leaked_pages"] = len(audit["leaked"])
                leaked += len(audit["leaked"])
            rows.append(row)
        return ClusterReport(
            policy=self.policy.name,
            completed=list(self.completed),
            elapsed_s=elapsed,
            steps=self._steps,
            slo=self.config.slo,
            replicas=rows,
            scale_events=list(self.scale_events),
            fault_events=list(self._fault_log),
            lost=list(self._lost),
            requests_orphaned=self._orphaned,
            requests_retried=len(self._attempts),
            retries_total=self._retries_total,
            kv_leaked_pages=leaked,
        )
