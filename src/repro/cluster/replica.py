"""One serving replica: an engine plus a roofline-priced virtual clock.

A :class:`Replica` wraps a :class:`~repro.serve.engine.ServeEngine` (its own
KV cache, queue and batching state) around a shared model, optionally
re-wrapped with a per-replica weight-quantisation scheme.  Its clock is a
:class:`~repro.serve.engine.VirtualClock` whose seconds-per-token rate is
derived from the :mod:`repro.accelerator.roofline` cost model, so simulated
time reflects what the hardware would charge for this replica's number
formats: decode is memory bound, weight-resident GEMMs move bytes at the
weight format's width and the attention GEMMs (reads of the KV cache) at the
KV format's width — a denser format lifts the memory roof and the replica
ticks faster.  Heterogeneous fleets (different ``kv_spec`` / ``weight_spec``
per replica) therefore run at genuinely different speeds in simulation, not
just with different memory accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.accelerator.roofline import RooflineModel, matmul_arithmetic_intensity
from repro.accelerator.workloads import decoder_workload
from repro.hardware.technology import TSMC28_LIKE
from repro.llm.inference import InferenceModel, QuantizationScheme
from repro.obs import Observability
from repro.serve.engine import EngineConfig, ServeEngine, VirtualClock

__all__ = ["ReplicaConfig", "Replica", "decode_time_per_token"]

#: Storage width of an unquantised tensor, matching the serving layer's
#: FP16 KV baseline (:data:`repro.serve.kv_cache.UNQUANTIZED_KV_BITS`).
UNQUANTIZED_BITS = 16.0


@dataclass(frozen=True)
class ReplicaConfig:
    """Shape and hardware cost model of one replica.

    ``kv_spec`` / ``weight_spec`` are :mod:`repro.quant` spec strings
    (``None`` = unquantised FP16): the KV spec quantises the replica's cache
    storage, the weight spec re-wraps the model with a
    :meth:`~repro.llm.inference.QuantizationScheme.from_format` scheme.
    ``max_batch_size`` / ``token_budget`` / ``max_seq_len`` /
    ``kv_backend`` / ``kv_page_size`` / ``num_kv_blocks`` mirror
    :class:`~repro.serve.engine.EngineConfig` (paged KV with radix prefix
    sharing by default).  The remaining fields
    parameterise the roofline that prices this replica's decode tokens:
    PE-array geometry, DRAM bandwidth, and the KV context length one decode
    token is priced at.
    """

    kv_spec: Optional[str] = None
    weight_spec: Optional[str] = None
    max_batch_size: int = 4
    token_budget: Optional[int] = None
    max_seq_len: Optional[int] = None
    kv_backend: str = "paged"
    kv_page_size: int = 16
    num_kv_blocks: Optional[int] = None
    pe_rows: int = 32
    pe_cols: int = 32
    dram_gbytes_per_s: float = 25.6
    decode_context: int = 64

    def __post_init__(self):
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ValueError("PE array dimensions must be positive")
        if self.dram_gbytes_per_s <= 0:
            raise ValueError("dram_gbytes_per_s must be positive")
        if self.decode_context < 1:
            raise ValueError("decode_context must be >= 1")

    def engine_config(self) -> EngineConfig:
        return EngineConfig(max_batch_size=self.max_batch_size,
                            token_budget=self.token_budget,
                            kv_spec=self.kv_spec,
                            max_seq_len=self.max_seq_len,
                            kv_backend=self.kv_backend,
                            kv_page_size=self.kv_page_size,
                            num_kv_blocks=self.num_kv_blocks)


def _storage_bits(spec) -> float:
    """Average storage bits per element of a quant spec (16.0 when ``None``)."""
    if spec is None:
        return UNQUANTIZED_BITS
    from repro.quant import get_quantizer

    return float(get_quantizer(spec).bits_per_element())


def decode_time_per_token(model_config, config: Optional[ReplicaConfig] = None) -> float:
    """Roofline seconds one decode token costs on a replica's hardware.

    Builds the decode-phase operator list of one decoder layer stack
    (:func:`~repro.accelerator.workloads.decoder_workload` at the config's
    ``decode_context``) and sums each GEMM's attainable runtime under a
    two-ceiling roofline.  Weight-resident GEMMs stream their operands at the
    weight format's bits per element; the attention score/context GEMMs read
    the KV cache, so they stream at the KV format's width.  Decode sits left
    of the ridge (memory bound) for every format, which is why denser
    formats translate almost linearly into faster replicas.
    """
    config = config or ReplicaConfig()
    roofline = RooflineModel(
        peak_macs_per_s=config.pe_rows * config.pe_cols * TSMC28_LIKE.clock_frequency_hz,
        dram_bandwidth_bytes_per_s=config.dram_gbytes_per_s * 1e9,
        name="replica",
    )
    workload = decoder_workload(model_config, config.decode_context, phase="decode")
    weight_bits = _storage_bits(config.weight_spec)
    kv_bits = _storage_bits(config.kv_spec)
    total = 0.0
    for op in workload.matmuls:
        bits = weight_bits if op.weight_resident else kv_bits
        attainable = roofline.attainable_macs_per_s(matmul_arithmetic_intensity(op, bits))
        total += workload.repeat * op.macs / attainable
    return total


class Replica:
    """One engine of a cluster, stepped externally on its own virtual clock."""

    def __init__(self, replica_id: int, model: InferenceModel,
                 config: Optional[ReplicaConfig] = None, start_time: float = 0.0,
                 obs: Optional[Observability] = None):
        self.replica_id = int(replica_id)
        self.config = config or ReplicaConfig()
        if self.config.weight_spec is not None:
            model = InferenceModel(model.config, model.state,
                                   scheme=QuantizationScheme.from_format(self.config.weight_spec))
        self.model = model
        self.time_per_token = decode_time_per_token(model.config, self.config)
        self.clock = VirtualClock(time_per_token=self.time_per_token)
        self.clock.wait_until(start_time)
        self.start_time = float(start_time)
        self.obs = obs
        if obs is not None and obs.tracer is not None:
            obs.tracer.name_track(obs.track, f"replica {self.replica_id}")
        self.engine = ServeEngine(model, self.config.engine_config(),
                                  clock=self.clock, obs=obs)
        self.draining = False
        self.retired = False
        self.crashed = False
        self.crash_time = None
        self.speed_factor = 1.0
        self._partitions = []

    # -------------------------------------------------------- engine facade
    def submit(self, request, not_before: Optional[float] = None) -> None:
        self.engine.submit(request, not_before=not_before)

    def step(self) -> list:
        return self.engine.step()

    @property
    def has_work(self) -> bool:
        return self.engine.has_work

    @property
    def queue_depth(self) -> int:
        return self.engine.queue_depth

    @property
    def num_active(self) -> int:
        return self.engine.num_active

    @property
    def projected_load(self) -> int:
        return self.engine.projected_load

    @property
    def next_event_time(self) -> float:
        return self.engine.next_event_time

    def cached_prefix_tokens(self, request) -> int:
        """Measured reuse: prompt tokens this replica's cache would serve.

        A radix-index peek (no pages are claimed), 0 under the contiguous
        backend — the signal ``prefix_affinity`` routes on, so placement
        follows where a prefix is *actually* cached rather than where a hash
        says it should be.
        """
        return self.engine.cache.match_prefix(request.prompt_tokens)

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prompt tokens served from cached prefixes so far."""
        return self.engine.kv_hit_rate

    @property
    def now(self) -> float:
        return self.clock.now()

    # -------------------------------------------------------------- faults
    def crash(self, time_s: Optional[float] = None) -> list:
        """Kill the replica and return its orphaned in-flight requests.

        Everything the replica held dies with it: active decode slots,
        queued admissions, and every KV page — there is nothing to audit
        because the machine is gone, which is exactly why orphans must
        re-prefill from token zero wherever they are retried.  Returns the
        orphans in deterministic order (active slots first, then the queue
        in admission order).  A crashed replica must never be stepped or
        submitted to again.
        """
        if self.crashed:
            return []
        self.crashed = True
        self.crash_time = self.now if time_s is None else float(time_s)
        return self.engine.inflight_requests()

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the roofline clock by a multiplier.

        ``factor`` scales seconds-per-token: 4.0 makes the replica four
        times slower, 1.0 restores nominal speed.  Work already admitted
        keeps running — just on a slower clock — so a slow replica drags
        latency without orphaning anything.
        """
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.speed_factor = float(factor)
        self.clock.time_per_token = self.time_per_token * self.speed_factor

    def partition(self, start: float, end: float) -> None:
        """Make the replica unreachable from the router over ``[start, end)``."""
        if end <= start:
            raise ValueError("partition interval must have end > start")
        self._partitions.append((float(start), float(end)))

    def reachable(self, at: float) -> bool:
        """Whether the router can reach this replica at instant ``at``."""
        return not any(start <= at < end for start, end in self._partitions)

    def partition_end_after(self, at: float) -> float:
        """Earliest instant the replica heals if partitioned at ``at`` (else inf)."""
        ends = [end for start, end in self._partitions if start <= at < end]
        return min(ends) if ends else math.inf

    @property
    def kv_spec(self) -> str:
        return self.engine.cache.kv_spec

    @property
    def weight_spec(self) -> str:
        return self.config.weight_spec or "fp16"

    def __repr__(self) -> str:
        return (f"Replica(id={self.replica_id}, kv={self.kv_spec!r}, "
                f"weights={self.weight_spec!r}, load={self.projected_load}, "
                f"now={self.now:.6f}{', draining' if self.draining else ''})")

    # ------------------------------------------------------------ reporting
    def describe(self) -> dict:
        """Per-replica breakdown row for the :class:`ClusterReport`."""
        report = self.engine.report()
        return {
            "replica_id": self.replica_id,
            "kv_spec": self.kv_spec,
            "weight_spec": self.weight_spec,
            "time_per_token_s": self.time_per_token,
            "start_time_s": self.start_time,
            "finish_time_s": self.now,
            "requests": len(report.completed),
            "prefill_tokens": report.prefill_tokens,
            "decode_tokens": report.decode_tokens,
            "peak_active": report.peak_active,
            "reused_prefix_tokens": report.reused_tokens,
            "prefix_hit_rate": report.kv_hit_rate,
            "peak_pages_in_use": report.peak_pages_in_use,
            "kv_peak_memory_mib": report.kv_peak_memory_bits / 8.0 / 2**20,
            "status": ("crashed" if self.crashed
                       else "retired" if self.retired
                       else "draining" if self.draining else "active"),
        }
