"""Routing policies: a decorator registry mirroring :mod:`repro.quant.registry`.

A routing policy decides which replica receives an arriving request.  Every
policy is a :class:`RoutingPolicy` subclass registered under a name with
:func:`register_policy`; :func:`get_policy` resolves a name (case- and
separator-insensitive) into a fresh, seeded instance, and an unknown name
raises :class:`UnknownPolicyError` with a did-you-mean suggestion — the same
three-entry-point shape as the quantiser registry, so adding a policy is one
decorated class and every call site (simulation, benchmark sweep, CLI flag)
picks it up.

The built-in policies span the classic load-balancing trade-offs:

* ``round_robin`` — stateless rotation; ignores load and heterogeneity.
* ``least_loaded`` — minimum *projected KV tokens* (active + queued); weighs
  a queued long document more than a queued chat turn.
* ``join_shortest_queue`` — minimum request count (queued + active); the
  textbook JSQ policy, blind to request sizes.
* ``power_of_two`` — samples two replicas and takes the less loaded; nearly
  JSQ quality at O(1) state probes (the power-of-two-choices result).
* ``prefix_affinity`` — routes to the replica whose paged KV cache measurably
  holds the longest prefix of the prompt (falling back to a stable prefix
  hash while caches are cold), so shared system prompts land where their
  pages already live, at the price of load blindness.

Policies never see an unroutable replica.  The simulation builds the
candidate list before every ``choose`` call, excluding draining replicas
and — under chaos (:mod:`repro.cluster.chaos`) — crashed and currently
partitioned ones, and it re-presents crash-orphaned requests to the policy
as fresh arrivals (retry-with-reroute).  A policy therefore needs no fault
awareness of its own: ``prefix_affinity`` simply measures a cold cache on
whatever replica the retry lands on, because the orphan's KV chain died
with the crashed machine.
"""

from __future__ import annotations

import argparse
import difflib
import hashlib

import numpy as np

__all__ = [
    "RoutingPolicy",
    "UnknownPolicyError",
    "register_policy",
    "get_policy",
    "list_policies",
]


class UnknownPolicyError(ValueError, argparse.ArgumentTypeError):
    """Raised for a routing-policy name the registry does not know.

    Subclasses both :class:`ValueError` and :class:`argparse.ArgumentTypeError`
    so a bad ``--policies`` flag becomes a clean usage error that keeps the
    did-you-mean suggestion.
    """

    def __init__(self, name):
        self.name = name
        message = f"unknown routing policy {name!r}"
        matches = difflib.get_close_matches(str(name).lower(), list(_POLICIES), n=1, cutoff=0.5)
        if matches:
            message += f" (did you mean {matches[0]!r}?)"
        super().__init__(message)


#: policy name -> RoutingPolicy subclass, in registration order.
_POLICIES: dict = {}


def register_policy(name: str):
    """Class decorator registering a :class:`RoutingPolicy` subclass."""

    def decorate(cls):
        if not (isinstance(cls, type) and issubclass(cls, RoutingPolicy)):
            raise TypeError(f"@register_policy expects a RoutingPolicy subclass, got {cls!r}")
        if name in _POLICIES:
            raise ValueError(f"routing policy {name!r} is already registered")
        cls.name = name
        _POLICIES[name] = cls
        return cls

    return decorate


def get_policy(name, seed: int = 0) -> "RoutingPolicy":
    """Resolve a policy name (or instance) into a fresh policy instance.

    Names are case-insensitive and accept ``-``/space as separators
    (``"Least-Loaded"`` == ``"least_loaded"``).  ``seed`` feeds the policies
    that randomise (``power_of_two``), so a simulation seeded once routes
    deterministically.
    """
    if isinstance(name, RoutingPolicy):
        return name
    if isinstance(name, type) and issubclass(name, RoutingPolicy):
        return name(seed=seed)
    key = str(name).strip().lower().replace("-", "_").replace(" ", "_")
    cls = _POLICIES.get(key)
    if cls is None:
        raise UnknownPolicyError(name)
    return cls(seed=seed)


def list_policies() -> tuple:
    """Registered policy names, in registration order."""
    return tuple(_POLICIES)


class RoutingPolicy:
    """Base class: one :meth:`choose` call per arriving request.

    ``replicas`` is the list of routable replicas (draining ones already
    excluded, never empty) in stable ``replica_id`` order.  Policies may keep
    internal state (rotation counters, RNGs) — one policy instance drives one
    simulation, so state never leaks across runs.
    """

    name = None

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def choose(self, request, replicas):
        raise NotImplementedError

    @staticmethod
    def _least(replicas, key):
        """Minimum-key replica with ties broken by replica id (deterministic)."""
        return min(replicas, key=lambda r: (key(r), r.replica_id))


@register_policy("round_robin")
class RoundRobin(RoutingPolicy):
    """Rotate through the routable replicas in submission order."""

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._next = 0

    def choose(self, request, replicas):
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return replica


@register_policy("least_loaded")
class LeastLoaded(RoutingPolicy):
    """Route to the replica with the fewest projected KV tokens."""

    def choose(self, request, replicas):
        return self._least(replicas, lambda r: r.projected_load)


@register_policy("join_shortest_queue")
class JoinShortestQueue(RoutingPolicy):
    """Route to the replica with the fewest requests (queued + active)."""

    def choose(self, request, replicas):
        return self._least(replicas, lambda r: r.queue_depth + r.num_active)


@register_policy("power_of_two")
class PowerOfTwo(RoutingPolicy):
    """Sample two replicas, keep the one with less projected load."""

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.rng = np.random.default_rng(seed)

    def choose(self, request, replicas):
        if len(replicas) == 1:
            return replicas[0]
        first, second = self.rng.choice(len(replicas), size=2, replace=False)
        return self._least([replicas[int(first)], replicas[int(second)]],
                           lambda r: r.projected_load)


@register_policy("prefix_affinity")
class PrefixAffinity(RoutingPolicy):
    """Route to the replica whose cache holds the longest prefix of the prompt.

    Replicas that expose ``cached_prefix_tokens(request)`` (a radix-index
    peek, see :meth:`repro.cluster.replica.Replica.cached_prefix_tokens`)
    are probed for *measured* reuse: the request goes to the replica that
    would actually serve the most prompt tokens from its paged KV cache,
    ties broken by replica id.  When no replica holds any of the prefix
    (cold caches, or a contiguous-backend fleet) placement falls back to a
    stable digest of the first ``prefix_tokens`` token ids (not Python's
    randomised ``hash``), so identical prefixes still co-locate — the first
    request of a prefix group seeds exactly one replica's cache and every
    follower then measures a hit there.  Placement is reproducible across
    processes either way.  The policy ignores load entirely, which the
    benchmark's imbalance column makes visible.
    """

    def __init__(self, seed: int = 0, prefix_tokens: int = 8):
        super().__init__(seed)
        self.prefix_tokens = int(prefix_tokens)

    def choose(self, request, replicas):
        best, best_cached = None, 0
        for replica in replicas:  # stable replica_id order: first max wins ties
            probe = getattr(replica, "cached_prefix_tokens", None)
            if probe is None:
                continue
            cached = probe(request)
            if cached > best_cached:
                best, best_cached = replica, cached
        if best is not None:
            return best
        prefix = np.asarray(request.prompt_tokens[: self.prefix_tokens], dtype=np.int64)
        digest = hashlib.blake2s(prefix.tobytes(), digest_size=8,
                                 key=self.seed.to_bytes(8, "little", signed=True)).digest()
        return replicas[int.from_bytes(digest, "little") % len(replicas)]
