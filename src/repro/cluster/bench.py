"""The ``cluster_bench`` experiment: routing policy x fleet size x KV format.

One driver run replays the *same* Poisson trace through a simulated fleet
once per (policy, replica count, KV spec) combination and reports fleet
goodput, SLO attainment, load imbalance and latency percentiles per row.
Every quantity is derived on virtual clocks priced by the roofline cost
model (:func:`repro.cluster.replica.decode_time_per_token`), so rows are
deterministic, machine-independent, and reflect hardware cost: a denser KV
format makes every replica faster *and* admits more concurrent context.

The offered load and the SLO thresholds are derived from the same roofline:
the trace arrives at ``utilization`` times what one FP16 replica can sustain,
and the SLO allows ``slo_slack`` times the no-queueing service time.  Small
fleets are therefore overloaded (low attainment, high queueing), large
fleets comfortable — the sweep shows where each policy's goodput curve
saturates.

Registered as ``cluster_bench`` in the experiment runner (cached parallel
pipeline, ``repro run cluster_bench --fast``) and reachable directly as
``repro cluster-bench``.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import ExperimentResult
from repro.cluster.replica import ReplicaConfig, decode_time_per_token
from repro.cluster.simulation import (
    ClusterConfig,
    ClusterSimulation,
    SLOConfig,
    homogeneous_fleet,
)
from repro.serve.workload import WorkloadConfig, generate_requests

__all__ = ["DEFAULT_POLICIES", "DEFAULT_REPLICA_COUNTS", "DEFAULT_KV_SPECS",
           "cluster_model_name", "default_workload", "default_replica",
           "saturating_arrival_rate", "derived_slo", "cluster_bench", "run"]

#: Routing policies compared by default (full mode sweeps the whole registry).
DEFAULT_POLICIES = ("round_robin", "least_loaded", "join_shortest_queue",
                    "power_of_two", "prefix_affinity")

#: Fleet sizes compared by default.
DEFAULT_REPLICA_COUNTS = (1, 2, 4)

#: KV storage formats compared by default (``None`` = FP16 baseline).
DEFAULT_KV_SPECS = (None, "int8")


def cluster_model_name(fast: bool) -> str:
    """The zoo checkpoint the fleet serves (shared with ``serve_bench``).

    Single source of truth for :func:`run`, the ``repro cluster-bench`` CLI
    and the pipeline dependency declaration
    (``experiment_model_specs("cluster_bench")``); sharing the serve-bench
    checkpoint means one ``zoo:<model>`` stage feeds both benchmarks.
    """
    from repro.serve.bench import serve_model_name

    return serve_model_name(fast)


def default_workload(fast: bool) -> WorkloadConfig:
    """The benchmark's trace shape (the arrival rate is derived separately)."""
    if fast:
        return WorkloadConfig(num_requests=16, prompt_tokens=(4, 12),
                              new_tokens=(3, 8), seed=0)
    return WorkloadConfig(num_requests=64, prompt_tokens=(12, 32),
                          new_tokens=(6, 16), seed=0)


def default_replica(fast: bool) -> ReplicaConfig:
    """The replica template every fleet of the sweep is built from."""
    return ReplicaConfig(max_batch_size=4 if fast else 8)


def _mean_tokens(workload: WorkloadConfig) -> tuple:
    """(mean prompt tokens, mean total tokens) of a trace shape."""
    prompt = sum(workload.prompt_tokens) / 2.0
    total = prompt + sum(workload.new_tokens) / 2.0
    return prompt, total


def saturating_arrival_rate(model_config, replica: ReplicaConfig,
                            workload: WorkloadConfig, utilization: float = 3.0) -> float:
    """Offered load (requests/s) at ``utilization`` x one replica's capacity.

    One replica sustains roughly ``1 / (time_per_token * mean tokens per
    request)`` requests per second on its roofline-priced clock; the trace is
    generated at a multiple of that, so the single-replica row of the sweep
    queues heavily while a ``>= utilization``-replica fleet keeps up.
    """
    if utilization <= 0:
        raise ValueError("utilization must be positive")
    time_per_token = decode_time_per_token(model_config, replica)
    _, mean_total = _mean_tokens(workload)
    return utilization / (time_per_token * mean_total)


def derived_slo(model_config, replica: ReplicaConfig, workload: WorkloadConfig,
                slo_slack: float = 4.0) -> SLOConfig:
    """SLOs at ``slo_slack`` x the no-queueing service time of a mean request.

    TTFT must beat ``slack x`` the pure prefill time of a mean prompt;
    end-to-end latency must beat ``slack x`` the full service time.  Both are
    priced on the template replica's roofline clock, so attainment measures
    queueing and placement quality, not the absolute hardware speed.
    """
    if slo_slack <= 0:
        raise ValueError("slo_slack must be positive")
    time_per_token = decode_time_per_token(model_config, replica)
    mean_prompt, mean_total = _mean_tokens(workload)
    return SLOConfig(ttft_s=slo_slack * time_per_token * mean_prompt,
                     latency_s=slo_slack * time_per_token * mean_total)


#: Summary columns copied into each benchmark row, in display order.
_ROW_METRICS = ("requests", "goodput_rps", "slo_attainment", "load_imbalance",
                "decode_tokens_per_s", "total_tokens_per_s",
                "ttft_p50_ms", "ttft_p95_ms", "latency_p50_ms", "latency_p95_ms")


def cluster_bench(model, policies=DEFAULT_POLICIES, replica_counts=DEFAULT_REPLICA_COUNTS,
                  kv_specs=DEFAULT_KV_SPECS, workload: WorkloadConfig = None,
                  replica: ReplicaConfig = None, utilization: float = 3.0,
                  slo_slack: float = 4.0, arrival_rate: float = None,
                  seed: int = 0) -> list:
    """Sweep policy x fleet size x KV spec over one replayed trace; returns rows.

    The trace (arrivals, prompts, per-request seeds) is generated once —
    every fleet of the sweep replays it identically, so row differences
    isolate the policy, the fleet size and the KV format.  ``arrival_rate``
    overrides the roofline-derived offered load
    (:func:`saturating_arrival_rate`) for ad-hoc traces.
    """
    workload = workload or WorkloadConfig()
    template = replica or ReplicaConfig()
    baseline = dataclasses.replace(template, kv_spec=None, weight_spec=None)
    if arrival_rate is None:
        arrival_rate = saturating_arrival_rate(model.config, baseline, workload,
                                               utilization=utilization)
    workload = dataclasses.replace(workload, arrival_rate=arrival_rate)
    slo = derived_slo(model.config, baseline, workload, slo_slack=slo_slack)
    requests = generate_requests(model.config.vocab_size, workload)
    rows = []
    for kv_spec in kv_specs:
        for policy in policies:
            for count in replica_counts:
                fleet = tuple(dataclasses.replace(template, kv_spec=kv_spec)
                              for _ in range(count))
                simulation = ClusterSimulation(
                    model, ClusterConfig(replicas=fleet, policy=policy, slo=slo,
                                         seed=seed))
                report = simulation.run(requests)
                summary = report.summary()
                row = {
                    "policy": summary["policy"],
                    "replicas": count,
                    "kv_cache": report.replicas[0]["kv_spec"],
                }
                row.update((key, summary[key]) for key in _ROW_METRICS)
                rows.append(row)
    return rows


def run(fast=None, policies=None, replica_counts=None, kv_specs=None,
        num_requests=None, arrival_rate=None) -> ExperimentResult:
    """Multi-replica cluster serving: routing policy x fleet size x KV format under one trace.

    The registered ``cluster_bench`` experiment driver (the pipeline calls
    it with ``fast`` only).  Fast mode simulates small fleets of the
    Llama-1B zoo model over a short trace; the full run sweeps every
    registered routing policy over larger Llama-7B fleets.  The keyword
    overrides back the ``repro cluster-bench`` CLI flags.
    """
    from repro.experiments.common import is_fast_mode
    from repro.llm.zoo import default_corpus, load_inference_model

    fast_mode = is_fast_mode(fast)
    model_name = cluster_model_name(fast_mode)
    corpus = default_corpus(fast=fast)
    model = load_inference_model(model_name, corpus=corpus)
    if policies is None:
        policies = ("round_robin", "least_loaded") if fast_mode else DEFAULT_POLICIES
    if replica_counts is None:
        replica_counts = (1, 4) if fast_mode else DEFAULT_REPLICA_COUNTS
    if kv_specs is None:
        kv_specs = DEFAULT_KV_SPECS
    overrides = {}
    if num_requests is not None:
        overrides["num_requests"] = num_requests
    workload = dataclasses.replace(default_workload(fast_mode), **overrides)
    template = default_replica(fast_mode)
    if arrival_rate is None:
        arrival_rate = saturating_arrival_rate(
            model.config, dataclasses.replace(template, kv_spec=None, weight_spec=None),
            workload)
    rows = cluster_bench(model, policies=tuple(policies),
                         replica_counts=tuple(replica_counts),
                         kv_specs=tuple(kv_specs), workload=workload,
                         replica=template, arrival_rate=arrival_rate)
    return ExperimentResult(
        experiment_id="Cluster-Bench",
        title=f"Multi-replica serving of {model_name}: policy x fleet size x KV format",
        rows=rows,
        columns=["policy", "replicas", "kv_cache"] + list(_ROW_METRICS),
        notes=(
            "Every row replays the identical Poisson trace through a simulated fleet on "
            "roofline-priced virtual clocks.  The offered load is a fixed multiple of one "
            "FP16 replica's capacity, so single-replica rows queue heavily (low "
            "slo_attainment, high ttft_p95) while larger fleets saturate their goodput.  "
            "Load-aware policies (least_loaded, join_shortest_queue, power_of_two) "
            "balance *projected* work at each arrival; load_imbalance measures "
            "*realised* decode tokens, so on short uniform traces blind rotation can "
            "look tighter, while hash-based prefix_affinity trades balance for "
            "placement locality.  Quantised KV makes every replica faster (denser "
            "formats lift the memory roof of the decode roofline), which shows up "
            "directly in goodput."
        ),
        metadata={
            "fast": fast_mode,
            "model": model_name,
            "policies": list(policies),
            "replica_counts": list(replica_counts),
            "kv_specs": [spec or "fp16" for spec in kv_specs],
            "workload": {"num_requests": workload.num_requests,
                         "prompt_tokens": list(workload.prompt_tokens),
                         "new_tokens": list(workload.new_tokens),
                         "seed": workload.seed},
            "arrival_rate": arrival_rate,
            "replica": {"max_batch_size": template.max_batch_size,
                        "pe_rows": template.pe_rows, "pe_cols": template.pe_cols,
                        "dram_gbytes_per_s": template.dram_gbytes_per_s},
        },
    )
