"""The ``cluster_bench`` experiment: routing policy x fleet size x KV format.

One driver run replays the *same* Poisson trace through a simulated fleet
once per (policy, replica count, KV spec) combination and reports fleet
goodput, SLO attainment, load imbalance and latency percentiles per row.
Every quantity is derived on virtual clocks priced by the roofline cost
model (:func:`repro.cluster.replica.decode_time_per_token`), so rows are
deterministic, machine-independent, and reflect hardware cost: a denser KV
format makes every replica faster *and* admits more concurrent context.

The offered load and the SLO thresholds are derived from the same roofline:
the trace arrives at ``utilization`` times what one FP16 replica can sustain,
and the SLO allows ``slo_slack`` times the no-queueing service time.  Small
fleets are therefore overloaded (low attainment, high queueing), large
fleets comfortable — the sweep shows where each policy's goodput curve
saturates.

Registered as ``cluster_bench`` in the experiment runner (cached parallel
pipeline, ``repro run cluster_bench --fast``) and reachable directly as
``repro cluster-bench``.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.reporting import ExperimentResult
from repro.cluster.replica import ReplicaConfig, decode_time_per_token
from repro.cluster.simulation import (
    ClusterConfig,
    ClusterSimulation,
    SLOConfig,
    homogeneous_fleet,
)
from repro.serve.workload import (
    MultiTurnConfig,
    SharedPrefixConfig,
    WorkloadConfig,
    generate_trace,
)

__all__ = ["DEFAULT_POLICIES", "DEFAULT_REPLICA_COUNTS", "DEFAULT_KV_SPECS",
           "WORKLOAD_KINDS", "cluster_model_name", "default_workload",
           "default_replica", "saturating_arrival_rate", "derived_slo",
           "cluster_bench", "run"]

#: Routing policies compared by default (full mode sweeps the whole registry).
DEFAULT_POLICIES = ("round_robin", "least_loaded", "join_shortest_queue",
                    "power_of_two", "prefix_affinity")

#: Fleet sizes compared by default.
DEFAULT_REPLICA_COUNTS = (1, 2, 4)

#: KV storage formats compared by default (``None`` = FP16 baseline).
DEFAULT_KV_SPECS = (None, "int8")

#: Trace shapes the benchmark can sweep under (see :mod:`repro.serve.workload`).
WORKLOAD_KINDS = ("poisson", "shared_prefix")


def cluster_model_name(fast: bool) -> str:
    """The zoo checkpoint the fleet serves (shared with ``serve_bench``).

    Single source of truth for :func:`run`, the ``repro cluster-bench`` CLI
    and the pipeline dependency declaration
    (``experiment_model_specs("cluster_bench")``); sharing the serve-bench
    checkpoint means one ``zoo:<model>`` stage feeds both benchmarks.
    """
    from repro.serve.bench import serve_model_name

    return serve_model_name(fast)


def default_workload(fast: bool, kind: str = "poisson"):
    """The benchmark's trace shape for a workload kind (arrival rate derived
    separately).

    ``"poisson"`` is the classic independent-prompt mix;
    ``"shared_prefix"`` opens 80 % of the prompts with one of a few shared
    prefixes, the workload class prefix-sharing caches (and the
    ``prefix_affinity`` policy's measured-reuse routing) exist for.
    """
    if kind not in WORKLOAD_KINDS:
        raise ValueError(f"workload kind must be one of {WORKLOAD_KINDS}, got {kind!r}")
    if kind == "shared_prefix":
        if fast:
            return SharedPrefixConfig(num_requests=16, num_prefixes=2,
                                      prefix_tokens=16, unique_tokens=(2, 6),
                                      new_tokens=(3, 8), shared_fraction=0.8, seed=0)
        return SharedPrefixConfig(num_requests=64, num_prefixes=4,
                                  prefix_tokens=32, unique_tokens=(4, 12),
                                  new_tokens=(6, 16), shared_fraction=0.8, seed=0)
    if fast:
        return WorkloadConfig(num_requests=16, prompt_tokens=(4, 12),
                              new_tokens=(3, 8), seed=0)
    return WorkloadConfig(num_requests=64, prompt_tokens=(12, 32),
                          new_tokens=(6, 16), seed=0)


def default_replica(fast: bool) -> ReplicaConfig:
    """The replica template every fleet of the sweep is built from.

    Fast mode shrinks the KV page so short CI prompts still span several
    pages and the paged admission/sharing paths run for real.
    """
    return ReplicaConfig(max_batch_size=4 if fast else 8,
                         kv_page_size=4 if fast else 16)


def _mean_tokens(workload) -> tuple:
    """(mean prompt tokens, mean total tokens) of a trace shape."""
    if isinstance(workload, SharedPrefixConfig):
        prompt = workload.prefix_tokens + sum(workload.unique_tokens) / 2.0
    elif isinstance(workload, MultiTurnConfig):
        # turn t's prompt is system + t user messages; averaged over the
        # turns of a mean-length conversation
        mean_turns = sum(workload.turns) / 2.0
        mean_user = sum(workload.user_tokens) / 2.0
        prompt = workload.system_tokens + mean_user * (mean_turns + 1) / 2.0
    else:
        prompt = sum(workload.prompt_tokens) / 2.0
    total = prompt + sum(workload.new_tokens) / 2.0
    return prompt, total


def saturating_arrival_rate(model_config, replica: ReplicaConfig,
                            workload, utilization: float = 3.0) -> float:
    """Offered load (requests/s) at ``utilization`` x one replica's capacity.

    One replica sustains roughly ``1 / (time_per_token * mean tokens per
    request)`` requests per second on its roofline-priced clock; the trace is
    generated at a multiple of that, so the single-replica row of the sweep
    queues heavily while a ``>= utilization``-replica fleet keeps up.
    """
    if utilization <= 0:
        raise ValueError("utilization must be positive")
    time_per_token = decode_time_per_token(model_config, replica)
    _, mean_total = _mean_tokens(workload)
    return utilization / (time_per_token * mean_total)


def derived_slo(model_config, replica: ReplicaConfig, workload,
                slo_slack: float = 4.0) -> SLOConfig:
    """SLOs at ``slo_slack`` x the no-queueing service time of a mean request.

    TTFT must beat ``slack x`` the pure prefill time of a mean prompt;
    end-to-end latency must beat ``slack x`` the full service time.  Both are
    priced on the template replica's roofline clock, so attainment measures
    queueing and placement quality, not the absolute hardware speed.
    """
    if slo_slack <= 0:
        raise ValueError("slo_slack must be positive")
    time_per_token = decode_time_per_token(model_config, replica)
    mean_prompt, mean_total = _mean_tokens(workload)
    return SLOConfig(ttft_s=slo_slack * time_per_token * mean_prompt,
                     latency_s=slo_slack * time_per_token * mean_total)


#: Summary columns copied into each benchmark row, in display order.
_ROW_METRICS = ("requests", "goodput_rps", "slo_attainment", "load_imbalance",
                "prefix_hit_rate", "peak_pages_in_use",
                "decode_tokens_per_s", "total_tokens_per_s",
                "ttft_p50_ms", "ttft_p95_ms", "latency_p50_ms", "latency_p95_ms")


def cluster_bench(model, policies=DEFAULT_POLICIES, replica_counts=DEFAULT_REPLICA_COUNTS,
                  kv_specs=DEFAULT_KV_SPECS, workload=None,
                  replica: ReplicaConfig = None, utilization: float = 3.0,
                  slo_slack: float = 4.0, arrival_rate: float = None,
                  seed: int = 0) -> list:
    """Sweep policy x fleet size x KV spec over one replayed trace; returns rows.

    The trace (arrivals, prompts, per-request seeds) is generated once —
    every fleet of the sweep replays it identically, so row differences
    isolate the policy, the fleet size and the KV format.  ``workload`` may
    be any :mod:`repro.serve.workload` config (Poisson, shared-prefix,
    multi-turn); ``arrival_rate`` overrides the roofline-derived offered
    load (:func:`saturating_arrival_rate`) for ad-hoc traces.
    """
    workload = workload or WorkloadConfig()
    template = replica or ReplicaConfig()
    baseline = dataclasses.replace(template, kv_spec=None, weight_spec=None)
    if arrival_rate is None:
        arrival_rate = saturating_arrival_rate(model.config, baseline, workload,
                                               utilization=utilization)
    workload = dataclasses.replace(workload, arrival_rate=arrival_rate)
    slo = derived_slo(model.config, baseline, workload, slo_slack=slo_slack)
    requests = generate_trace(model.config.vocab_size, workload)
    rows = []
    for kv_spec in kv_specs:
        for policy in policies:
            for count in replica_counts:
                fleet = tuple(dataclasses.replace(template, kv_spec=kv_spec)
                              for _ in range(count))
                simulation = ClusterSimulation(
                    model, ClusterConfig(replicas=fleet, policy=policy, slo=slo,
                                         seed=seed))
                report = simulation.run(requests)
                summary = report.summary()
                row = {
                    "policy": summary["policy"],
                    "replicas": count,
                    "kv_cache": report.replicas[0]["kv_spec"],
                }
                row.update((key, summary[key]) for key in _ROW_METRICS)
                rows.append(row)
    return rows


def run(fast=None, policies=None, replica_counts=None, kv_specs=None,
        num_requests=None, arrival_rate=None, workload_kind: str = "poisson",
        kv_page_size=None) -> ExperimentResult:
    """Multi-replica cluster serving: routing policy x fleet size x KV format under one trace.

    The registered ``cluster_bench`` experiment driver (the pipeline calls
    it with ``fast`` only).  Fast mode simulates small fleets of the
    Llama-1B zoo model over a short trace; the full run sweeps every
    registered routing policy over larger Llama-7B fleets.  The keyword
    overrides back the ``repro cluster-bench`` CLI flags: ``workload_kind``
    selects the trace shape (``shared_prefix`` makes the prefix-hit-rate
    column meaningful) and ``kv_page_size`` resizes the replicas' KV pages.
    """
    from repro.experiments.common import is_fast_mode
    from repro.llm.zoo import default_corpus, load_inference_model

    fast_mode = is_fast_mode(fast)
    model_name = cluster_model_name(fast_mode)
    corpus = default_corpus(fast=fast)
    model = load_inference_model(model_name, corpus=corpus)
    if policies is None:
        policies = ("round_robin", "least_loaded") if fast_mode else DEFAULT_POLICIES
    if replica_counts is None:
        replica_counts = (1, 4) if fast_mode else DEFAULT_REPLICA_COUNTS
    if kv_specs is None:
        kv_specs = DEFAULT_KV_SPECS
    overrides = {}
    if num_requests is not None:
        overrides["num_requests"] = num_requests
    workload = dataclasses.replace(default_workload(fast_mode, workload_kind),
                                   **overrides)
    template = default_replica(fast_mode)
    if kv_page_size is not None:
        template = dataclasses.replace(template, kv_page_size=kv_page_size)
    if arrival_rate is None:
        arrival_rate = saturating_arrival_rate(
            model.config, dataclasses.replace(template, kv_spec=None, weight_spec=None),
            workload)
    rows = cluster_bench(model, policies=tuple(policies),
                         replica_counts=tuple(replica_counts),
                         kv_specs=tuple(kv_specs), workload=workload,
                         replica=template, arrival_rate=arrival_rate)
    return ExperimentResult(
        experiment_id="Cluster-Bench",
        title=f"Multi-replica serving of {model_name}: policy x fleet size x KV format",
        rows=rows,
        columns=["policy", "replicas", "kv_cache"] + list(_ROW_METRICS),
        notes=(
            "Every row replays the identical Poisson trace through a simulated fleet on "
            "roofline-priced virtual clocks.  The offered load is a fixed multiple of one "
            "FP16 replica's capacity, so single-replica rows queue heavily (low "
            "slo_attainment, high ttft_p95) while larger fleets saturate their goodput.  "
            "Load-aware policies (least_loaded, join_shortest_queue, power_of_two) "
            "balance *projected* work at each arrival; load_imbalance measures "
            "*realised* decode tokens, so on short uniform traces blind rotation can "
            "look tighter, while prefix_affinity routes each request to the replica "
            "whose paged KV cache measurably holds the longest prompt prefix "
            "(prefix_hit_rate shows the reuse it wins, especially under the "
            "shared_prefix workload), trading balance for placement locality.  "
            "Quantised KV makes every replica faster (denser formats lift the "
            "memory roof of the decode roofline), which shows up directly in "
            "goodput."
        ),
        metadata={
            "fast": fast_mode,
            "model": model_name,
            "policies": list(policies),
            "replica_counts": list(replica_counts),
            "kv_specs": [spec or "fp16" for spec in kv_specs],
            "workload": {"kind": workload_kind, **dataclasses.asdict(workload)},
            "arrival_rate": arrival_rate,
            "replica": {"max_batch_size": template.max_batch_size,
                        "kv_backend": template.kv_backend,
                        "kv_page_size": template.kv_page_size,
                        "pe_rows": template.pe_rows, "pe_cols": template.pe_cols,
                        "dram_gbytes_per_s": template.dram_gbytes_per_s},
        },
    )
