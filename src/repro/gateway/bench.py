"""The ``gateway_bench`` experiment: saturation-knee sweep of the async gateway.

One run boots a fresh in-process :class:`~repro.gateway.server.GatewayServer`
per offered rate (real sockets on a loopback port, ephemeral), replays the
same open-loop Poisson trace shape through the HTTP front door at increasing
arrival rates, and reports per rate: client-measured goodput, TTFT and
inter-token-latency percentiles, the shed (429) rate, cancel-reclaim round
trips, and the gateway's own drain-time KV page audit.  The rows trace the
saturation knee — the offered load where goodput stops growing — and show
the property load shedding buys: past the knee the 429 rate climbs while
goodput holds near the pre-knee peak instead of collapsing into queueing.

Every rate's server is drained at the end of its run and the run **fails**
if the KV page audit reports a single leaked page — cancelled and timed-out
requests must return every page to the pool or the radix index.

Registered as ``gateway_bench`` in the experiment runner and reachable
directly as ``repro gateway-bench``.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.analysis.reporting import ExperimentResult
from repro.gateway.driver import Gateway, GatewayConfig
from repro.gateway.loadgen import (LoadGenConfig, find_saturation_knee,
                                   sweep_arrival_rates)
from repro.gateway.server import GatewayServer
from repro.serve.bench import default_engine_config
from repro.serve.engine import ServeEngine, WallClock
from repro.serve.workload import WorkloadConfig

__all__ = ["gateway_model_name", "default_gateway_workload", "default_rates",
           "default_gateway_config", "gateway_sweep", "run"]


def gateway_model_name(fast: bool) -> str:
    """The zoo checkpoint the gateway benchmark serves.

    Shared by :func:`run`, the ``repro gateway-bench`` CLI and the pipeline
    dependency declaration (``experiment_model_specs("gateway_bench")``).
    """
    return "Llama-1B" if fast else "Llama-7B"


def default_gateway_workload(fast: bool) -> WorkloadConfig:
    """The per-rate trace shape (its ``arrival_rate`` is the sweep base)."""
    if fast:
        return WorkloadConfig(num_requests=12, arrival_rate=20.0,
                              prompt_tokens=(6, 16), new_tokens=(3, 8), seed=0)
    return WorkloadConfig(num_requests=64, arrival_rate=8.0,
                          prompt_tokens=(16, 48), new_tokens=(8, 24), seed=0)


def default_rates(fast: bool) -> tuple:
    """Offered loads swept per mode, straddling the saturation knee."""
    if fast:
        return (10.0, 40.0, 160.0, 640.0)
    return (4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def default_gateway_config(fast: bool, shed_policy: str = "reject") -> GatewayConfig:
    """The front-door shape per mode (queue bound sized to force shedding)."""
    depth = 6 if fast else 24
    return GatewayConfig(max_queue_depth=depth, shed_policy=shed_policy,
                         drain_timeout_s=5.0 if fast else 30.0)


async def gateway_sweep(model, rates, workload: WorkloadConfig,
                        engine_config=None, gateway_config: GatewayConfig = None,
                        cancel_every: int = 0, timeout_s: float = None,
                        progress=None) -> list:
    """One server per rate, one open-loop replay each; returns summary rows.

    Each row is the client-side :meth:`~repro.gateway.loadgen.LoadReport.summary`
    plus the server's drain stats — flattened into ``kv_leaked_pages`` and
    ``server_shed`` columns.  Raises :class:`RuntimeError` if any drain audit
    reports leaked KV pages: the invariant this benchmark exists to enforce.
    """
    base = LoadGenConfig(workload=workload, cancel_every=cancel_every,
                         cancel_after_tokens=1, timeout_s=timeout_s)

    async def make_server():
        engine = ServeEngine(model, engine_config, clock=WallClock())
        server = GatewayServer(Gateway(engine, gateway_config), host="127.0.0.1",
                               port=0)
        await server.start()
        return server

    rows = await sweep_arrival_rates(make_server, model.config.vocab_size, base,
                                     rates, progress=progress)
    for row in rows:
        stats = row.pop("server")
        row["kv_leaked_pages"] = stats["kv_leaked_pages"]
        row["server_shed"] = stats["shed"]
        row["server_completed"] = stats["completed"]
        if stats["kv_leaked_pages"]:
            raise RuntimeError(
                f"KV page leak at rate {row['arrival_rate']}: audit reported "
                f"{stats['kv_leaked_pages']} leaked pages ({stats['kv_audit']})"
            )
    return rows


def run(fast=None, rates=None, num_requests=None, shed_policy=None,
        cancel_every=None, timeout_s=None, max_queue_depth=None) -> ExperimentResult:
    """Async-gateway saturation sweep: goodput, shedding and cancel-reclaim over HTTP.

    The registered ``gateway_bench`` experiment driver (the pipeline calls it
    with ``fast`` only).  Fast mode serves the Llama-1B zoo model through an
    ephemeral loopback server at four offered loads; the full run sweeps a
    finer rate grid against Llama-7B.  The keyword overrides back the
    ``repro gateway-bench`` CLI flags.  Numbers are wall-clock (open-loop
    arrivals are real ``asyncio`` sleeps), so rows vary across machines; the
    structural claims — the knee exists, goodput holds past it, zero pages
    leak — are machine-independent and asserted.
    """
    from repro.experiments.common import is_fast_mode
    from repro.llm.zoo import default_corpus, load_inference_model

    fast_mode = is_fast_mode(fast)
    model_name = gateway_model_name(fast_mode)
    model = load_inference_model(model_name, corpus=default_corpus(fast=fast))
    workload = default_gateway_workload(fast_mode)
    if num_requests is not None:
        workload = dataclasses.replace(workload, num_requests=num_requests)
    rates = tuple(float(r) for r in rates) if rates else default_rates(fast_mode)
    engine_config = default_engine_config(fast_mode)
    gateway_config = default_gateway_config(fast_mode, shed_policy or "reject")
    if max_queue_depth is not None:
        gateway_config = dataclasses.replace(gateway_config,
                                             max_queue_depth=max_queue_depth)
    if cancel_every is None:
        cancel_every = 4
    rows = asyncio.run(gateway_sweep(
        model, rates, workload, engine_config=engine_config,
        gateway_config=gateway_config, cancel_every=cancel_every,
        timeout_s=timeout_s))
    goodputs = [row["goodput_rps"] for row in rows]
    knee = find_saturation_knee([row["arrival_rate"] for row in rows], goodputs)
    peak = max(goodputs[: knee + 1])
    post_knee = goodputs[knee:]
    return ExperimentResult(
        experiment_id="Gateway-Bench",
        title=f"Async gateway saturation sweep serving {model_name} over HTTP",
        rows=rows,
        columns=["arrival_rate", "requests", "completed", "shed", "cancelled",
                 "errors", "goodput_rps", "shed_rate", "ttft_p50_ms", "ttft_p95_ms",
                 "itl_p50_ms", "itl_p95_ms", "cancel_reclaim_p50_ms",
                 "kv_leaked_pages"],
        notes=(
            "Open-loop Poisson arrivals over real loopback HTTP: offered load does not "
            "slow down when the engine falls behind, so past the saturation knee the "
            "admission gate sheds the excess (shed_rate climbs) and goodput holds near "
            "the pre-knee peak instead of collapsing into unbounded queueing.  Every "
            "fourth request is cancelled mid-stream by default; cancel_reclaim "
            "percentiles measure the cancel round trip, after which the engine has "
            "already returned the request's KV pages (kv_leaked_pages is asserted 0 "
            "at every rate's drain).  Rows are wall-clock and machine-dependent."
        ),
        metadata={
            "fast": fast_mode,
            "model": model_name,
            "rates": list(rates),
            "knee_rate": rows[knee]["arrival_rate"],
            "peak_goodput_rps": peak,
            "post_knee_goodput_ratio": (min(post_knee) / peak) if peak > 0 else 0.0,
            "kv_leaked_pages": sum(row["kv_leaked_pages"] for row in rows),
            "cancel_every": cancel_every,
            "timeout_s": timeout_s,
            "workload": {"num_requests": workload.num_requests,
                         "prompt_tokens": list(workload.prompt_tokens),
                         "new_tokens": list(workload.new_tokens),
                         "seed": workload.seed},
            "engine": {"max_batch_size": engine_config.max_batch_size,
                       "token_budget": engine_config.token_budget,
                       "kv_backend": engine_config.kv_backend,
                       "kv_page_size": engine_config.kv_page_size},
            "gateway": {"max_queue_depth": gateway_config.max_queue_depth,
                        "shed_policy": gateway_config.shed_policy,
                        "load_factor": gateway_config.load_factor},
        },
    )
