"""Admission control: bounded queues and load shedding for the gateway.

An open-loop client population does not slow down when the engine falls
behind — requests keep arriving at the offered rate and the queue grows
without bound, taking every latency percentile with it.  The
:class:`AdmissionGate` is the gateway's defence: each incoming request is
judged against the engine's *current* load signals (``queue_depth`` and
``projected_load`` — the projected KV-token footprint of everything queued
and active, the same signal the cluster router balances on) and either
admitted, refused, or admitted at the cost of shedding queued victims.

Three policies, selected by :attr:`ShedConfig.policy`:

``reject``
    The classic bounded queue: when the queue is full or the projected load
    exceeds ``load_factor x token_budget``, the *newcomer* is refused
    (HTTP 429).  Oldest work is never abandoned, so admitted requests always
    finish — predictable, but a burst of stale work can crowd out fresh
    traffic.

``drop_oldest``
    Admit the newcomer and shed the *oldest queued* request instead.  The
    queue becomes a sliding window over the freshest traffic — the right
    shape when clients retry anyway and a stale answer is worth less than a
    fresh one.

``deadline``
    Deadline-aware: first shed queued requests whose deadline has already
    passed (they would be timed out unserved anyway — shedding them early
    returns capacity *now*); if none are expired, admit the newcomer only by
    displacing a queued request with a *looser* deadline than its own,
    otherwise refuse it.  Requests without deadlines are treated as loosest.

Decisions are pure data (:class:`Decision`): the gate never mutates the
engine, the :class:`~repro.gateway.driver.Gateway` applies the verdict
(cancelling victims, marking sessions ``SHED``).  That keeps every policy
unit-testable against a stub engine with three attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShedConfig", "Decision", "AdmissionGate", "SHED_POLICIES"]

#: The registered admission policies (the CLI choices).
SHED_POLICIES = ("reject", "drop_oldest", "deadline")


@dataclass(frozen=True)
class ShedConfig:
    """Shape of the admission gate.

    ``max_queue_depth`` bounds the engine's waiting line; ``load_factor``
    scales the engine token budget into the projected-load ceiling (1.0 =
    shed as soon as queued+active projected KV tokens exceed what the cache
    can hold at once; higher values queue deeper before shedding).
    """

    max_queue_depth: int = 32
    policy: str = "reject"
    load_factor: float = 2.0

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shedding policy {self.policy!r}; expected one of "
                f"{', '.join(SHED_POLICIES)}"
            )
        if not self.load_factor > 0:
            raise ValueError("load_factor must be > 0")


@dataclass(frozen=True)
class Decision:
    """The gate's verdict on one incoming request.

    ``victims`` are queued request ids to shed *before* submitting the
    newcomer (only ever non-empty when ``admit`` is true under
    ``drop_oldest``/``deadline``); ``reason`` is a human-readable refusal
    explanation carried into the 429 response body.
    """

    admit: bool
    victims: tuple = ()
    reason: str = ""


class AdmissionGate:
    """Stateless policy object deciding admit/shed per request (see module doc)."""

    def __init__(self, config: ShedConfig = None):
        self.config = config or ShedConfig()

    def _overloaded(self, engine, request) -> str:
        """The active overload condition, or '' when there is headroom."""
        if engine.queue_depth >= self.config.max_queue_depth:
            return (f"queue depth {engine.queue_depth} at the limit "
                    f"({self.config.max_queue_depth})")
        ceiling = self.config.load_factor * engine.token_budget
        projected = engine.projected_load + request.projected_tokens
        if projected > ceiling:
            return (f"projected KV load {projected} tokens would exceed the "
                    f"shed ceiling ({ceiling:.0f} = {self.config.load_factor:g} "
                    f"x {engine.token_budget}-token budget)")
        return ""

    def decide(self, engine, request, now: float) -> Decision:
        """Judge ``request`` against the engine's current load."""
        overload = self._overloaded(engine, request)
        if not overload:
            return Decision(admit=True)
        policy = self.config.policy
        if policy == "reject":
            return Decision(admit=False, reason=overload)
        queued = engine.queued_requests()
        if policy == "drop_oldest":
            if not queued:
                # overload comes entirely from active work: nothing to drop
                return Decision(admit=False, reason=overload)
            return Decision(admit=True, victims=(queued[0].request_id,),
                            reason=overload)
        # deadline policy: expired victims first, then displace looser deadlines
        expired = tuple(q.request_id for q in queued
                        if q.deadline is not None and q.deadline < now)
        if expired:
            return Decision(admit=True, victims=expired, reason=overload)
        if request.deadline is not None and queued:
            # a request without a deadline is infinitely loose
            loosest = max(queued, key=lambda q: (q.deadline is None, q.deadline or 0.0))
            if loosest.deadline is None or request.deadline < loosest.deadline:
                return Decision(admit=True, victims=(loosest.request_id,),
                                reason=overload)
        return Decision(admit=False, reason=overload)
