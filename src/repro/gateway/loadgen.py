"""Open-loop HTTP load generator for the gateway.

A *closed-loop* client waits for its previous answer before sending the next
request, so an overloaded server automatically slows its own offered load —
latency looks fine right up to the cliff.  Real traffic is *open-loop*:
arrivals keep coming at the offered rate no matter how far the server falls
behind.  This module replays :mod:`repro.serve.workload` traces that way —
each request fires at its trace arrival time on the wall clock, over its own
connection, regardless of outstanding work — which is exactly the regime
load shedding exists for.

:func:`run_loadgen` replays one trace against a listening gateway and
returns a :class:`LoadReport`: per-request outcomes (streamed tokens with
arrival timestamps, shed/ok/cancelled status, cancel round-trip latency) and
an aggregate summary — goodput, TTFT/inter-token-latency percentiles, shed
rate.  A configurable slice of requests is cancelled mid-stream after a few
tokens, measuring *cancel-reclaim latency*: the round-trip from issuing
``POST /v1/cancel/<id>`` to the 200 that confirms the engine already freed
the KV pages.

:func:`sweep_arrival_rates` reruns the same trace shape at increasing
offered loads and :func:`find_saturation_knee` locates the knee — the rate
where goodput stops growing with offered load.  Past the knee a healthy
gateway holds goodput near the pre-knee peak by shedding the excess (the
429 rate climbs instead of the latency percentiles).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time

from repro.core.stats import percentile_summary
from repro.serve.workload import WorkloadConfig, generate_trace, validate_arrival_rate

__all__ = ["LoadGenConfig", "RequestOutcome", "LoadReport", "run_loadgen",
           "sweep_arrival_rates", "find_saturation_knee"]


@dataclasses.dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one load-generation run.

    ``workload`` is any :mod:`repro.serve.workload` config — its
    ``arrival_rate`` must be strictly positive (open-loop needs real
    inter-arrival gaps; the closed-loop ``0`` burst convention is rejected).
    ``cancel_every`` cancels every N-th request after ``cancel_after_tokens``
    streamed tokens (0 = never); ``timeout_s`` attaches a per-request
    deadline; ``time_scale`` compresses trace time (0.5 = replay twice as
    fast) so CI can replay a realistic trace shape in a fraction of a
    second.
    """

    workload: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    cancel_every: int = 0
    cancel_after_tokens: int = 1
    timeout_s: float = None
    time_scale: float = 1.0

    def __post_init__(self):
        validate_arrival_rate(self.workload.arrival_rate, positive=True)
        if self.cancel_every < 0:
            raise ValueError("cancel_every must be >= 0 (0 = never cancel)")
        if self.cancel_after_tokens < 0:
            raise ValueError("cancel_after_tokens must be >= 0")
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError("timeout_s must be > 0 (or None)")
        if not self.time_scale > 0:
            raise ValueError("time_scale must be > 0")


@dataclasses.dataclass
class RequestOutcome:
    """What one open-loop request experienced, measured at the client.

    ``status`` is the HTTP status (200, 429, ...); ``state`` the terminal
    session state from the ``end`` event (``DONE``/``CANCELLED``/...) or
    ``"SHED"`` for 429s.  ``token_times`` are client wall-clock receive
    instants relative to ``sent_at``; ``cancel_latency_s`` is the cancel
    round trip for requests this run cancelled (None otherwise).
    """

    request_id: int
    status: int = 0
    state: str = ""
    tokens: tuple = ()
    sent_at: float = 0.0
    token_times: tuple = ()
    finished_at: float = None
    shed_reason: str = ""
    cancel_latency_s: float = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 200 and self.state == "DONE"

    @property
    def shed(self) -> bool:
        # 429 at the gate, or displaced mid-queue by a drop_oldest/deadline
        # newcomer (streamed end event carries state SHED on a 200 response)
        return self.status == 429 or self.state == "SHED"

    @property
    def ttft_s(self) -> float:
        return self.token_times[0] if self.token_times else None

    @property
    def inter_token_s(self) -> list:
        return [b - a for a, b in zip(self.token_times, self.token_times[1:])]


@dataclasses.dataclass
class LoadReport:
    """Aggregate view of one run: outcomes plus the offered/elapsed frame."""

    outcomes: list
    elapsed_s: float
    offered_rate: float

    def summary(self) -> dict:
        """The loadgen row shape: goodput, latency percentiles, shed rate."""
        ok = [o for o in self.outcomes if o.ok]
        shed = [o for o in self.outcomes if o.shed]
        cancelled = [o for o in self.outcomes if o.state == "CANCELLED"]
        timed_out = [o for o in self.outcomes if o.state == "TIMEOUT"]
        errors = [o for o in self.outcomes if o.error]
        elapsed = max(self.elapsed_s, 1e-12)
        itl = [gap for o in ok for gap in o.inter_token_s]
        reclaims = [o.cancel_latency_s for o in self.outcomes
                    if o.cancel_latency_s is not None]
        return {
            "offered_rate_rps": self.offered_rate,
            "requests": len(self.outcomes),
            "completed": len(ok),
            "shed": len(shed),
            "cancelled": len(cancelled),
            "timed_out": len(timed_out),
            "errors": len(errors),
            "elapsed_s": self.elapsed_s,
            "goodput_rps": len(ok) / elapsed,
            "goodput_tokens_per_s": sum(len(o.tokens) for o in ok) / elapsed,
            "shed_rate": len(shed) / len(self.outcomes) if self.outcomes else 0.0,
            **percentile_summary((o.ttft_s for o in ok if o.ttft_s is not None),
                                 "ttft", scale=1e3, unit="ms"),
            **percentile_summary(itl, "itl", scale=1e3, unit="ms"),
            **percentile_summary(reclaims, "cancel_reclaim", scale=1e3, unit="ms"),
        }


# ------------------------------------------------------------- HTTP client
async def _read_http_head(reader):
    """Parse a status line + headers; returns (status, headers dict)."""
    head = await reader.readuntil(b"\r\n\r\n")
    status_line, *header_lines = head.decode("latin-1").split("\r\n")
    status = int(status_line.split(" ", 2)[1])
    headers = {}
    for line in header_lines:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return status, headers


async def _post(host, port, path, payload) -> tuple:
    """One-shot POST; returns (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        writer.write((f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
                      f"Content-Type: application/json\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      f"Connection: close\r\n\r\n").encode("ascii") + body)
        await writer.drain()
        status, headers = await _read_http_head(reader)
        raw = await reader.read()
        length = headers.get("content-length")
        if length is not None:
            raw = raw[:int(length)]
        return status, json.loads(raw.decode("utf-8")) if raw else {}
    finally:
        writer.close()


async def _sse_events(reader):
    """Yield ``(event_name, payload_dict)`` from a Connection: close SSE body."""
    name, data = "", []
    while True:
        line = await reader.readline()
        if not line:
            return
        line = line.rstrip(b"\r\n").decode("utf-8")
        if not line:
            if name:
                yield name, json.loads("\n".join(data)) if data else {}
            name, data = "", []
        elif line.startswith("event:"):
            name = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data.append(line[len("data:"):].strip())


async def _drive_request(host, port, request, outcome: RequestOutcome,
                         cancel_after_tokens, do_cancel: bool, timeout_s) -> None:
    """Stream one generate call; optionally cancel it mid-stream."""
    payload = {
        "prompt_tokens": list(request.prompt_tokens),
        "max_new_tokens": request.max_new_tokens,
        "temperature": request.temperature,
        "top_k": request.top_k,
        "seed": request.seed,
        "stream": True,
    }
    if request.stop_token is not None:
        payload["stop_token"] = request.stop_token
    if timeout_s is not None:
        payload["timeout_s"] = timeout_s
    body = json.dumps(payload).encode("utf-8")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((f"POST /v1/generate HTTP/1.1\r\nHost: {host}\r\n"
                      f"Content-Type: application/json\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      f"Connection: close\r\n\r\n").encode("ascii") + body)
        await writer.drain()
        status, headers = await _read_http_head(reader)
        outcome.status = status
        if status != 200:
            raw = await reader.read()
            length = headers.get("content-length")
            if length is not None:
                raw = raw[:int(length)]
            detail = json.loads(raw.decode("utf-8")) if raw else {}
            outcome.state = "SHED" if status == 429 else f"HTTP_{status}"
            outcome.shed_reason = detail.get("reason", detail.get("error", ""))
            outcome.finished_at = time.perf_counter() - outcome.sent_at
            return
        server_id = None
        tokens, token_times = [], []
        async for name, event in _sse_events(reader):
            now = time.perf_counter() - outcome.sent_at
            if name == "accepted":
                server_id = event["request_id"]
            elif name == "token":
                tokens.append(event["token"])
                token_times.append(now)
                if (do_cancel and server_id is not None
                        and len(tokens) >= cancel_after_tokens):
                    t0 = time.perf_counter()
                    await _post(host, port, f"/v1/cancel/{server_id}", None)
                    outcome.cancel_latency_s = time.perf_counter() - t0
                    do_cancel = False   # one cancel per request
            elif name == "end":
                outcome.state = event.get("state", "")
                outcome.finished_at = now
        outcome.tokens = tuple(tokens)
        outcome.token_times = tuple(token_times)
    finally:
        writer.close()


async def _loadgen(host, port, requests, config: LoadGenConfig) -> LoadReport:
    start = time.perf_counter()
    outcomes = [RequestOutcome(request_id=index)
                for index in range(len(requests))]

    async def fire(index, request):
        target = request.arrival_time * config.time_scale
        delay = target - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)      # open loop: fire on schedule
        outcome = outcomes[index]
        outcome.sent_at = time.perf_counter()
        do_cancel = (config.cancel_every > 0
                     and index % config.cancel_every == config.cancel_every - 1)
        try:
            await _drive_request(host, port, request, outcome,
                                 config.cancel_after_tokens, do_cancel,
                                 config.timeout_s)
        except (OSError, asyncio.IncompleteReadError, json.JSONDecodeError,
                ValueError) as err:
            outcome.error = f"{type(err).__name__}: {err}"

    await asyncio.gather(*(fire(i, r) for i, r in enumerate(requests)))
    elapsed = time.perf_counter() - start
    return LoadReport(outcomes=outcomes, elapsed_s=elapsed,
                      offered_rate=config.workload.arrival_rate / config.time_scale)


def run_loadgen(host, port, vocab_size, config: LoadGenConfig = None) -> LoadReport:
    """Replay one open-loop trace against a listening gateway (blocking entry).

    Generates the deterministic trace for ``config.workload`` and drives it
    on a private event loop; use :func:`loadgen` from async code.
    """
    config = config or LoadGenConfig()
    requests = generate_trace(vocab_size, config.workload)
    return asyncio.run(_loadgen(host, port, requests, config))


async def loadgen(host, port, vocab_size, config: LoadGenConfig = None) -> LoadReport:
    """Async variant of :func:`run_loadgen` for callers already on a loop."""
    config = config or LoadGenConfig()
    requests = generate_trace(vocab_size, config.workload)
    return await _loadgen(host, port, requests, config)


# ------------------------------------------------------------------ sweep
def find_saturation_knee(rates, goodputs, threshold: float = 0.05) -> int:
    """Index of the saturation knee in an arrival-rate sweep.

    The knee is the first point whose goodput fails to improve on the best
    seen so far by at least ``threshold`` (relative) — offered load beyond it
    buys no goodput, only queueing or shedding.  If goodput keeps growing
    through the last point, the last index is returned (the knee was not
    reached).  Inputs must be sorted by increasing rate.
    """
    rates = list(rates)
    goodputs = list(goodputs)
    if len(rates) != len(goodputs) or not rates:
        raise ValueError("rates and goodputs must be equal-length and non-empty")
    if any(b < a for a, b in zip(rates, rates[1:])):
        raise ValueError("rates must be sorted increasing")
    best = goodputs[0]
    for index in range(1, len(rates)):
        if goodputs[index] < best * (1.0 + threshold):
            return index
        best = max(best, goodputs[index])
    return len(rates) - 1


async def sweep_arrival_rates(make_server, vocab_size, base_config: LoadGenConfig,
                              rates, progress=None) -> list:
    """Replay the same trace shape at each offered rate; returns summary rows.

    ``make_server`` is an async factory: awaited per rate, it must return a
    started object with ``host``/``port`` attributes and an async
    ``shutdown()`` returning final gateway stats (a fresh
    :class:`~repro.gateway.server.GatewayServer` per rate keeps the engine
    cold — no cross-rate KV reuse skewing the knee).  Each row is the
    :meth:`LoadReport.summary` dict plus ``arrival_rate`` and the server's
    shutdown stats under ``"server"``.
    """
    rows = []
    for rate in rates:
        validate_arrival_rate(rate, positive=True)
        config = dataclasses.replace(
            base_config,
            workload=dataclasses.replace(base_config.workload, arrival_rate=rate))
        server = await make_server()
        try:
            report = await loadgen(server.host, server.port, vocab_size, config)
        finally:
            stats = await server.shutdown()
        row = {"arrival_rate": rate, **report.summary(), "server": stats}
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows
