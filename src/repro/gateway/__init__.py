"""Gateway layer: the asyncio streaming front door over one serve engine.

:mod:`repro.serve` gives the engine; this package makes it *servable* —
an HTTP surface with per-token streaming, cancellation that reclaims KV
pages immediately, admission control that sheds load instead of queueing
without bound, and an open-loop load generator that measures where the
knee is:

* :mod:`repro.gateway.session` — the per-request state machine
  (``QUEUED → PREFILL → DECODE → DONE/CANCELLED/SHED/TIMEOUT``) bridging
  engine callbacks to awaiting HTTP handlers through asyncio queues;
* :mod:`repro.gateway.shedding` — the admission gate: ``reject`` (bounded
  queue, 429), ``drop_oldest`` (sliding window) and ``deadline``-aware
  policies, judged against the engine's live load signals;
* :mod:`repro.gateway.driver` — the :class:`Gateway` facade and the
  cooperative pump that steps the synchronous engine between event-loop
  awaits (no threads, no engine call ever races a step);
* :mod:`repro.gateway.server` — the stdlib HTTP/1.1 server:
  ``POST /v1/generate`` (JSON or SSE streaming), ``POST /v1/cancel/<id>``,
  ``GET /healthz``, ``GET /stats``, graceful drain on SIGTERM;
* :mod:`repro.gateway.loadgen` — open-loop Poisson replay of
  :mod:`repro.serve.workload` traces with an arrival-rate sweep and
  saturation-knee detection — and the ``gateway_bench`` experiment driver
  (:mod:`repro.gateway.bench`) asserting zero leaked KV pages at drain.

See ``docs/gateway.md`` for the wire format and benchmark methodology.
"""

from repro.gateway.driver import Gateway, GatewayConfig, GatewayDraining
from repro.gateway.loadgen import (
    LoadGenConfig,
    LoadReport,
    RequestOutcome,
    find_saturation_knee,
    run_loadgen,
    sweep_arrival_rates,
)
from repro.gateway.server import GatewayServer, serve_gateway
from repro.gateway.session import (
    CANCELLED,
    DECODE,
    DONE,
    PREFILL,
    QUEUED,
    SHED,
    TERMINAL_STATES,
    TIMEOUT,
    Session,
    SessionError,
    terminal_state_for,
)
from repro.gateway.shedding import SHED_POLICIES, AdmissionGate, Decision, ShedConfig

__all__ = [
    "Gateway",
    "GatewayConfig",
    "GatewayDraining",
    "GatewayServer",
    "serve_gateway",
    "Session",
    "SessionError",
    "terminal_state_for",
    "QUEUED",
    "PREFILL",
    "DECODE",
    "DONE",
    "CANCELLED",
    "SHED",
    "TIMEOUT",
    "TERMINAL_STATES",
    "AdmissionGate",
    "Decision",
    "ShedConfig",
    "SHED_POLICIES",
    "LoadGenConfig",
    "LoadReport",
    "RequestOutcome",
    "run_loadgen",
    "sweep_arrival_rates",
    "find_saturation_knee",
]
