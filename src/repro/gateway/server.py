"""Asyncio HTTP/1.1 front door over a :class:`~repro.gateway.driver.Gateway`.

Pure stdlib (``asyncio.start_server`` + hand-rolled HTTP parsing — no web
framework dependency), one connection per request, every response carries
``Connection: close`` so bodies are delimited by EOF and the wire protocol
stays trivially debuggable with ``curl``.

Endpoints
---------

``POST /v1/generate``
    Body: ``{"prompt_tokens": [...], "max_new_tokens": 16, "temperature":
    0.0, "top_k": 0, "seed": 0, "stop_token": null, "timeout_s": null,
    "stream": false}``.  Non-streaming: one JSON document with the generated
    tokens and finish metadata.  With ``"stream": true`` the response is
    Server-Sent Events (``text/event-stream``): one ``accepted`` event
    carrying the request id (so the client can cancel mid-stream), one
    ``token`` event per sampled token as the engine produces it, and a final
    ``end`` event with the terminal state.  Shed requests get HTTP 429 with
    a ``Retry-After`` header; during drain every generate gets 503.

``POST /v1/cancel/<id>``
    Cancels a queued or active request.  The engine releases the request's
    KV pages *synchronously before the response is written* (everything runs
    on one event loop), so a 200 here means the memory is already back.

``GET /healthz``
    ``200 {"status": "ok"}`` normally, ``503 {"status": "draining"}`` once
    shutdown began — the load-balancer probe shape.

``GET /stats``
    Live load signals: queue depth, active requests, projected KV load vs
    budget, pages in use, prefix hit rate, and the shed/cancel counters.

``GET /metrics``
    Prometheus text exposition (format 0.0.4) of the gateway's metrics
    registry.  Because the gateway shares its registry with the engine, one
    scrape covers both the ``gateway_*`` session counters and the
    ``engine_*`` token/latency series.  Empty (but valid) output when the
    gateway was built without an enabled :class:`~repro.obs.Observability`.

Streaming backpressure is per-connection: the handler ``await``s
``writer.drain()`` after every event, so a slow client throttles only its
own socket buffer while the engine keeps stepping for everyone else.

Pass ``access_log`` (any ``str -> None`` callable, e.g. ``print`` or
``logger.info``) to get one structured JSON line per handled request:
``{"event": "http_access", "method": ..., "path": ..., "status": ...,
"duration_ms": ...}``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Callable, Optional

from repro.gateway.driver import Gateway, GatewayDraining
from repro.gateway.session import SHED

__all__ = ["GatewayServer", "serve_gateway"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024


def _response(status: int, reason: str, body: bytes, content_type: str,
              extra_headers=()) -> bytes:
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    lines.extend(extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, reason: str, payload: dict, extra_headers=()) -> bytes:
    body = json.dumps(payload, default=float).encode("utf-8")
    return _response(status, reason, body, "application/json", extra_headers)


def _sse_event(event: str, payload: dict) -> bytes:
    data = json.dumps(payload, default=float)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


class _BadRequest(ValueError):
    """Maps to HTTP 400."""


class GatewayServer:
    """Bind a :class:`Gateway` to a TCP port (see module docstring)."""

    def __init__(self, gateway: Gateway, host: str = "127.0.0.1", port: int = 0,
                 access_log: Optional[Callable[[str], None]] = None):
        self.gateway = gateway
        self.host = host
        self.port = port            # 0 = ephemeral; real port filled in by start()
        self.access_log = access_log
        self._server = None

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Start accepting connections and the gateway pump."""
        self.gateway.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> dict:
        """Graceful stop: close the listener, drain the gateway, report stats."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        return await self.gateway.drain()

    # ------------------------------------------------------------ HTTP plumbing
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        method, path, status = "-", "-", 0
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except (_BadRequest, asyncio.IncompleteReadError, ConnectionError) as err:
                writer.write(_json_response(400, "Bad Request", {"error": str(err)}))
                status = 400
                return
            status = await self._route(method, path, headers, body, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass                    # client went away mid-response: their call
        finally:
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()
            self._log_access(method, path, status, time.perf_counter() - started)

    def _log_access(self, method: str, path: str, status: int,
                    duration_s: float) -> None:
        if self.access_log is None:
            return
        self.access_log(json.dumps(
            {"event": "http_access", "method": method, "path": path,
             "status": status, "duration_ms": round(duration_s * 1e3, 3)},
            sort_keys=True))

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest("request head too large")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _BadRequest("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, method, path, headers, body, writer) -> int:
        if method == "GET" and path == "/healthz":
            if self.gateway.draining:
                writer.write(_json_response(503, "Service Unavailable",
                                            {"status": "draining"}))
                return 503
            writer.write(_json_response(200, "OK", {"status": "ok"}))
            return 200
        if method == "GET" and path == "/stats":
            writer.write(_json_response(200, "OK", self.gateway.stats()))
            return 200
        if method == "GET" and path == "/metrics":
            body_bytes = self.gateway.obs.registry.to_prometheus().encode("utf-8")
            writer.write(_response(200, "OK", body_bytes,
                                   "text/plain; version=0.0.4; charset=utf-8"))
            return 200
        if method == "POST" and path == "/v1/generate":
            return await self._generate(body, writer)
        if method == "POST" and path.startswith("/v1/cancel/"):
            return self._cancel(path, writer)
        writer.write(_json_response(404, "Not Found",
                                    {"error": f"no route for {method} {path}"}))
        return 404

    # --------------------------------------------------------------- handlers
    @staticmethod
    def _parse_generate(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise _BadRequest(f"body is not valid JSON: {err}") from None
        if not isinstance(payload, dict) or "prompt_tokens" not in payload:
            raise _BadRequest('body must be a JSON object with "prompt_tokens"')
        known = {"prompt_tokens", "max_new_tokens", "temperature", "top_k",
                 "seed", "stop_token", "timeout_s", "stream"}
        unknown = set(payload) - known
        if unknown:
            raise _BadRequest(f"unknown fields: {sorted(unknown)}")
        return payload

    async def _generate(self, body: bytes, writer) -> int:
        try:
            payload = self._parse_generate(body)
            stream = bool(payload.pop("stream", False))
            session = self.gateway.submit(**payload)
        except _BadRequest as err:
            writer.write(_json_response(400, "Bad Request", {"error": str(err)}))
            return 400
        except GatewayDraining as err:
            writer.write(_json_response(503, "Service Unavailable",
                                        {"error": str(err)}))
            return 503
        except (TypeError, ValueError) as err:
            writer.write(_json_response(400, "Bad Request", {"error": str(err)}))
            return 400
        if session.state == SHED:
            writer.write(_json_response(
                429, "Too Many Requests",
                {"error": "shed", "request_id": session.request_id,
                 "reason": session.shed_reason},
                extra_headers=("Retry-After: 1",)))
            return 429
        if stream:
            await self._stream_session(session, writer)
            return 200
        record = await session.wait()
        if session.state == SHED:
            # displaced later by a drop_oldest/deadline newcomer, not at the gate
            writer.write(_json_response(
                429, "Too Many Requests",
                {"error": "shed", "request_id": session.request_id,
                 "reason": session.shed_reason or "displaced by admission policy"},
                extra_headers=("Retry-After: 1",)))
            return 429
        writer.write(_json_response(200, "OK", {
            **session.to_dict(),
            "prompt_tokens": list(record.request.prompt_tokens),
        }))
        return 200

    async def _stream_session(self, session, writer) -> None:
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n").encode("ascii")
        writer.write(head)
        writer.write(_sse_event("accepted", {"request_id": session.request_id}))
        await writer.drain()
        index = 0
        async for event in session.events():
            if event[0] == "token":
                _, token, t = event
                writer.write(_sse_event("token",
                                        {"index": index, "token": token, "t": t}))
                index += 1
            else:
                _, state, _record = event
                writer.write(_sse_event("end", {**session.to_dict(),
                                                "state": state}))
            await writer.drain()

    def _cancel(self, path: str, writer) -> int:
        suffix = path[len("/v1/cancel/"):]
        try:
            request_id = int(suffix)
        except ValueError:
            writer.write(_json_response(400, "Bad Request",
                                        {"error": f"bad request id {suffix!r}"}))
            return 400
        cancelled = self.gateway.cancel(request_id)
        writer.write(_json_response(200, "OK",
                                    {"request_id": request_id,
                                     "cancelled": cancelled}))
        return 200


async def serve_gateway(gateway: Gateway, host: str = "127.0.0.1", port: int = 8100,
                        ready=None, stop_signals=(signal.SIGTERM, signal.SIGINT),
                        announce=print, access_log=None) -> dict:
    """Run a gateway server until SIGTERM/SIGINT; returns the final stats.

    The CLI entry point: binds, announces ``gateway listening on host:port``
    (parseable by process supervisors and the loadgen), installs signal
    handlers that trigger the graceful drain, and blocks until shutdown
    completes.  ``ready`` (an :class:`asyncio.Event`) is set once the socket
    is bound — the in-process bench path uses it instead of parsing stdout.
    """
    server = GatewayServer(gateway, host=host, port=port, access_log=access_log)
    await server.start()
    if announce is not None:
        announce(f"gateway listening on {server.host}:{server.port}")
    if ready is not None:
        ready.set()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in stop_signals:
        loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        for sig in stop_signals:
            loop.remove_signal_handler(sig)
    stats = await server.shutdown()
    if announce is not None:
        announce("gateway drained: " + json.dumps(stats, default=float))
    return stats
