"""The gateway core: a cooperative engine pump plus the request facade.

:class:`~repro.serve.engine.ServeEngine` is synchronous — ``step()`` runs one
admission+prefill+decode iteration to completion.  The :class:`Gateway` makes
it servable from an asyncio event loop without threads:

* **one pump task** (:meth:`Gateway.pump`) steps the engine whenever it has
  work and yields to the event loop between steps (``await asyncio.sleep(0)``
  after each step, a real wait when idle), so socket reads/writes interleave
  with model compute at step granularity;
* **everything else runs between steps**: HTTP handlers submit and cancel on
  the same loop, so no engine call ever races a ``step()`` — cancellation
  releases KV pages synchronously, before the response is written;
* the engine's ``on_admit``/``on_token`` callbacks fire *inside* ``step()``
  and land in per-session asyncio queues; waiting handler coroutines wake as
  soon as the step returns control to the loop.

Admission is guarded by the :class:`~repro.gateway.shedding.AdmissionGate`:
a refused newcomer gets a ``SHED`` session back (the server turns it into a
429), displaced victims are cancelled on the engine and marked ``SHED``.

Shutdown is graceful: :meth:`Gateway.drain` stops accepting work, lets the
active requests finish within ``drain_timeout_s``, cancels the stragglers,
and leaves behind a final stats report including the KV page-leak audit
(which must come back clean — the invariant the bench asserts).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from repro.gateway import session as session_states
from repro.gateway.session import Session, terminal_state_for
from repro.gateway.shedding import AdmissionGate, ShedConfig
from repro.obs import Observability
from repro.serve.engine import Request

__all__ = ["GatewayConfig", "Gateway", "GatewayDraining"]


class GatewayDraining(RuntimeError):
    """Submit refused because the gateway is shutting down (HTTP 503)."""


@dataclass(frozen=True)
class GatewayConfig:
    """Behaviour of the front door (engine shape lives in ``EngineConfig``).

    ``max_queue_depth`` / ``shed_policy`` / ``load_factor`` parameterise the
    admission gate; ``default_timeout_s`` is applied to requests that do not
    carry their own timeout (``None`` = no deadline); ``drain_timeout_s``
    bounds how long shutdown waits for active requests; ``idle_poll_s`` is
    the pump's wake-up granularity when the engine is idle.
    """

    max_queue_depth: int = 32
    shed_policy: str = "reject"
    load_factor: float = 2.0
    default_timeout_s: Optional[float] = None
    drain_timeout_s: float = 10.0
    idle_poll_s: float = 0.02

    def __post_init__(self):
        if self.default_timeout_s is not None and not self.default_timeout_s > 0:
            raise ValueError("default_timeout_s must be > 0 (or None)")
        if not self.drain_timeout_s >= 0:
            raise ValueError("drain_timeout_s must be >= 0")
        if not self.idle_poll_s > 0:
            raise ValueError("idle_poll_s must be > 0")

    def shed_config(self) -> ShedConfig:
        return ShedConfig(max_queue_depth=self.max_queue_depth,
                          policy=self.shed_policy, load_factor=self.load_factor)


class Gateway:
    """Async facade over one :class:`~repro.serve.engine.ServeEngine`."""

    def __init__(self, engine, config: Optional[GatewayConfig] = None,
                 obs: Optional[Observability] = None):
        self.engine = engine
        self.config = config or GatewayConfig()
        self.gate = AdmissionGate(self.config.shed_config())
        self.sessions = {}          # request_id -> Session
        self.draining = False
        self._next_id = 0
        self._wake = asyncio.Event()
        self._pump_task = None
        self._stopped = False
        self.counters = {"submitted": 0, "completed": 0, "shed": 0,
                         "cancelled": 0, "timed_out": 0}
        # default to the engine's bundle so one registry carries both the
        # gateway_* counters and the engine_* series (one /metrics scrape)
        self.obs = obs if obs is not None else engine.obs
        self._tracer = self.obs.tracer
        registry = self.obs.registry
        labels = self.obs.labels
        self._m_counters = {
            key: registry.counter(f"gateway_{key}_total", help_text, labels)
            for key, help_text in (
                ("submitted", "Sessions opened (admitted or shed)"),
                ("completed", "Sessions that finished generation"),
                ("shed", "Sessions refused or displaced by the admission gate"),
                ("cancelled", "Sessions cancelled by the client or at drain"),
                ("timed_out", "Sessions that hit their deadline"),
            )
        }
        engine.on_admit = self._on_admit
        engine.on_token = self._on_token

    def _count(self, key: str) -> None:
        self.counters[key] += 1
        self._m_counters[key].inc()

    def _trace_session(self, session: Session, at: float) -> None:
        """One ``session`` span per terminal session, open→terminal.

        Emitted once at finish time from timestamps the session already
        carries; the engine separately traces the queued/prefill/decode
        breakdown of admitted requests on the same track.
        """
        if self._tracer is not None:
            self._tracer.complete(
                "session", min(session.created_at, at), at, self.obs.track,
                args={"request_id": session.request_id, "state": session.state})

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spawn the pump task on the running event loop."""
        if self._pump_task is None or self._pump_task.done():
            self._stopped = False
            self._pump_task = asyncio.get_running_loop().create_task(self.pump())

    async def stop(self) -> None:
        """Stop the pump immediately (drain first for a graceful exit)."""
        self._stopped = True
        self._wake.set()
        if self._pump_task is not None:
            await self._pump_task
            self._pump_task = None

    async def drain(self) -> dict:
        """Graceful shutdown: refuse new work, finish or cancel the rest.

        Returns the final :meth:`stats` snapshot (including the page audit).
        """
        self.draining = True
        self._wake.set()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout_s
        while self.engine.has_work and loop.time() < deadline:
            await asyncio.sleep(min(self.config.idle_poll_s, 0.05))
        for session in list(self.sessions.values()):
            if not session.is_terminal:
                self.cancel(session.request_id)
        await self.stop()
        return self.stats(audit=True)

    # ------------------------------------------------------------- submission
    def submit(self, prompt_tokens, max_new_tokens: int = 16, temperature: float = 0.0,
               top_k: int = 0, seed: int = 0, stop_token=None,
               timeout_s=None) -> Session:
        """Admit (or shed) one request; returns its :class:`Session`.

        The returned session is already ``SHED`` when the admission gate
        refused it (the server maps that to 429 without ever touching the
        engine).  Validation failures — bad token ids, prompts beyond the
        positional window — raise ``ValueError`` before any state changes.
        """
        if self.draining:
            raise GatewayDraining("gateway is draining; not accepting new requests")
        now = self.engine.clock.now()
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        elif not timeout_s > 0:
            raise ValueError("timeout_s must be > 0 (or omitted)")
        request = Request(
            request_id=self._next_id,
            prompt_tokens=prompt_tokens,
            max_new_tokens=max_new_tokens,
            arrival_time=now,
            temperature=temperature,
            top_k=top_k,
            seed=seed,
            stop_token=stop_token,
            deadline=now + timeout_s if timeout_s is not None else None,
        )
        decision = self.gate.decide(self.engine, request, now)
        session = Session(request, created_at=now)
        if decision.admit:
            self.engine.submit(request)     # may raise ValueError: nothing changed yet
        self._next_id += 1
        self.sessions[request.request_id] = session
        self._count("submitted")
        if not decision.admit:
            self._count("shed")
            session.finish(session_states.SHED, at=now)
            session.shed_reason = decision.reason
            self._trace_session(session, now)
            return session
        for victim_id in decision.victims:
            self._shed_queued(victim_id, now)
        self._wake.set()
        return session

    def _shed_queued(self, request_id: int, now: float) -> None:
        """Drop an admission-gate victim from the engine queue (state SHED)."""
        record = self.engine.cancel(request_id)
        session = self.sessions.get(request_id)
        self._count("shed")
        if session is not None and not session.is_terminal:
            session.finish(session_states.SHED, record, at=now)
            self._trace_session(session, now)

    def cancel(self, request_id: int) -> bool:
        """Client-requested cancel; KV pages are released before this returns.

        True when a queued or active request was cancelled, False for ids
        that are unknown or already terminal (cancel is idempotent-ish: a
        second cancel of the same id is a no-op, not an error).
        """
        session = self.sessions.get(request_id)
        if session is None or session.is_terminal:
            return False
        record = self.engine.cancel(request_id)
        self._count("cancelled")
        now = self.engine.clock.now()
        session.finish(session_states.CANCELLED, record, at=now)
        self._trace_session(session, now)
        return True

    # ------------------------------------------------------- engine callbacks
    def _on_admit(self, request_id: int, now: float) -> None:
        session = self.sessions.get(request_id)
        if session is not None:
            session.mark_admitted(now)

    def _on_token(self, request_id: int, token: int, now: float) -> None:
        session = self.sessions.get(request_id)
        if session is not None:
            session.push_token(token, now)

    def _dispatch(self, records) -> None:
        """Finish sessions for the step's terminal records."""
        for record in records:
            session = self.sessions.get(record.request.request_id)
            if session is None or session.is_terminal:
                continue    # cancelled/shed through the gateway: already final
            state = terminal_state_for(record.finish_reason)
            if state == session_states.DONE:
                self._count("completed")
            elif state == session_states.TIMEOUT:
                self._count("timed_out")
            elif state == session_states.CANCELLED:
                self._count("cancelled")
            session.finish(state, record, at=record.finish_time)
            self._trace_session(session, record.finish_time)

    # ------------------------------------------------------------------ pump
    async def pump(self) -> None:
        """Step the engine cooperatively until stopped (see module docstring)."""
        while not self._stopped:
            if self.engine.has_work:
                queued_before = self.engine.queue_depth
                records = self.engine.step()
                self._dispatch(records)
                made_progress = (records or self.engine.num_active
                                 or self.engine.queue_depth != queued_before)
                if made_progress:
                    await asyncio.sleep(0)  # yield: let I/O run between steps
                else:
                    # queued work the engine cannot admit yet (future arrival
                    # or blocked head-of-line): a real wait, not a busy spin
                    await self._idle_wait()
            elif self.draining:
                break
            else:
                await self._idle_wait()

    async def _idle_wait(self) -> None:
        self._wake.clear()
        if self.engine.has_work or self.draining:
            # something may become runnable on its own: poll at the idle rate
            try:
                await asyncio.wait_for(self._wake.wait(),
                                       timeout=self.config.idle_poll_s)
            except asyncio.TimeoutError:
                pass
        else:
            await self._wake.wait()

    # ------------------------------------------------------------------ stats
    def stats(self, audit: bool = False) -> dict:
        """Load signals + counters (the ``/stats`` payload).

        ``audit=True`` adds the KV page-leak audit (O(pool) — cheap here, but
        meant for shutdown reports and tests rather than per-request polling).
        """
        engine = self.engine
        payload = {
            "draining": self.draining,
            "queue_depth": engine.queue_depth,
            "num_active": engine.num_active,
            "projected_load": engine.projected_load,
            "token_budget": engine.token_budget,
            "kv_pages_in_use": engine.cache.pages_in_use,
            "kv_hit_rate": engine.kv_hit_rate,
            "reused_tokens": engine.reused_tokens,
            "peak_pages_in_use": engine.peak_pages_in_use,
            "sessions": len(self.sessions),
            **self.counters,
        }
        if audit:
            audit_report = engine.audit_kv_pages()
            payload["kv_audit"] = audit_report
            payload["kv_leaked_pages"] = len(audit_report["leaked"])
        return payload
