"""Per-request session state machine of the gateway.

Every request the front door accepts becomes one :class:`Session` — the
bridge between the synchronous engine world (the pump calls into the engine,
the engine fires ``on_admit``/``on_token`` callbacks) and the asynchronous
HTTP world (a handler coroutine awaiting tokens to stream).  A session moves
through a fixed state machine::

    QUEUED ──► PREFILL ──► DECODE ──► DONE
      │           │           │
      │           │           ├────► CANCELLED / TIMEOUT
      │           └─────────► CANCELLED / TIMEOUT
      ├──► SHED               (admission gate refused or dropped it)
      └──► CANCELLED / TIMEOUT

Transitions are validated: an illegal move (e.g. a token arriving for a shed
session) raises :class:`SessionError` instead of silently corrupting state —
the bug class a streaming server cannot debug from its output alone.  The
full transition history is recorded with clock timestamps, so tests and the
``/stats`` endpoint can reconstruct where time went.

Tokens flow through a per-session :class:`asyncio.Queue`: the engine pump
pushes ``("token", token, t)`` events as they are sampled (between event-loop
awaits) and a single terminal ``("end", state, record)`` event; the HTTP
handler drains the queue with :meth:`Session.events` or awaits the terminal
record with :meth:`Session.wait`.  The queue is bounded only by the
request's ``max_new_tokens``, so a slow streaming client can never hold more
than one answer's worth of tokens in gateway memory.
"""

from __future__ import annotations

import asyncio

__all__ = ["Session", "SessionError",
           "QUEUED", "PREFILL", "DECODE", "DONE", "CANCELLED", "SHED", "TIMEOUT",
           "TERMINAL_STATES", "terminal_state_for"]

QUEUED = "QUEUED"
PREFILL = "PREFILL"
DECODE = "DECODE"
DONE = "DONE"
CANCELLED = "CANCELLED"
SHED = "SHED"
TIMEOUT = "TIMEOUT"

#: States a session can never leave.
TERMINAL_STATES = frozenset({DONE, CANCELLED, SHED, TIMEOUT})

#: Legal moves of the state machine; anything else is a :class:`SessionError`.
_TRANSITIONS = {
    QUEUED: frozenset({PREFILL, CANCELLED, SHED, TIMEOUT}),
    PREFILL: frozenset({DECODE, CANCELLED, TIMEOUT}),
    DECODE: frozenset({DONE, CANCELLED, TIMEOUT}),
    DONE: frozenset(),
    CANCELLED: frozenset(),
    SHED: frozenset(),
    TIMEOUT: frozenset(),
}

#: Engine ``finish_reason`` -> terminal session state.
_STATE_BY_REASON = {
    "length": DONE,
    "stop_token": DONE,
    "cancelled": CANCELLED,
    "timeout": TIMEOUT,
}


class SessionError(RuntimeError):
    """An illegal state transition or event on a gateway session."""


def terminal_state_for(finish_reason: str) -> str:
    """Map an engine finish reason to the session's terminal state."""
    try:
        return _STATE_BY_REASON[finish_reason]
    except KeyError:
        raise SessionError(f"unknown engine finish reason {finish_reason!r}") from None


class Session:
    """One request's life inside the gateway (see module docstring).

    ``request`` is the :class:`~repro.serve.engine.Request` the gateway built
    (its ``request_id`` is the public handle clients cancel by, its
    ``deadline`` the absolute engine-clock cutoff).  The session starts in
    ``QUEUED``; the engine pump advances it via :meth:`mark_admitted` /
    :meth:`push_token` / :meth:`finish`.
    """

    def __init__(self, request, created_at: float = 0.0):
        self.request = request
        self.request_id = request.request_id
        self.created_at = created_at
        self.state = QUEUED
        self.history = [(QUEUED, created_at)]
        self.tokens = []
        self.record = None          # CompletedRequest once terminal
        self.shed_reason = ""       # set by the gateway when the gate refuses
        self.first_token_at = None
        self.finished_at = None
        self._events = asyncio.Queue()
        self._done = asyncio.Event()

    def __repr__(self) -> str:
        return (f"Session(id={self.request_id}, state={self.state}, "
                f"tokens={len(self.tokens)})")

    # ------------------------------------------------------------ transitions
    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, new_state: str, at: float = None) -> None:
        """Move to ``new_state``; raises :class:`SessionError` on illegal moves."""
        if new_state not in _TRANSITIONS:
            raise SessionError(f"unknown session state {new_state!r}")
        if new_state not in _TRANSITIONS[self.state]:
            raise SessionError(
                f"session {self.request_id}: illegal transition "
                f"{self.state} -> {new_state}"
            )
        self.state = new_state
        self.history.append((new_state, at))

    # --------------------------------------------------------- engine events
    def mark_admitted(self, now: float) -> None:
        """The engine granted a slot: prefill starts this step."""
        self.transition(PREFILL, now)

    def push_token(self, token: int, now: float) -> None:
        """One sampled token from the engine (first token ends prefill)."""
        if self.is_terminal:
            raise SessionError(
                f"session {self.request_id}: token after terminal state {self.state}"
            )
        if self.state == PREFILL:
            self.first_token_at = now
            self.transition(DECODE, now)
        elif self.state != DECODE:
            raise SessionError(
                f"session {self.request_id}: token while {self.state} "
                f"(never admitted?)"
            )
        self.tokens.append(int(token))
        self._events.put_nowait(("token", int(token), now))

    def finish(self, state: str, record=None, at: float = None) -> None:
        """Enter a terminal state and wake every waiter exactly once."""
        if state not in TERMINAL_STATES:
            raise SessionError(f"finish() requires a terminal state, got {state!r}")
        self.transition(state, at)
        self.record = record
        self.finished_at = at
        self._events.put_nowait(("end", state, record))
        self._done.set()

    # ------------------------------------------------------------- consumers
    async def wait(self):
        """Await the terminal record (non-streaming handlers)."""
        await self._done.wait()
        return self.record

    async def events(self):
        """Async iterator over ``("token", token, t)`` events, then ``("end", ...)``.

        Yields exactly one terminal event last; iteration ends after it.
        """
        while True:
            event = await self._events.get()
            yield event
            if event[0] == "end":
                return

    def to_dict(self) -> dict:
        """JSON-ready view (the ``/stats`` and non-streaming response shape)."""
        return {
            "request_id": self.request_id,
            "state": self.state,
            "tokens": list(self.tokens),
            "num_tokens": len(self.tokens),
            "created_at": self.created_at,
            "first_token_at": self.first_token_at,
            "finished_at": self.finished_at,
            "finish_reason": self.record.finish_reason if self.record else None,
        }
