"""Unified observability for the serve/cluster/gateway stack.

One :class:`Observability` bundle carries the four instruments a run may
want — a metrics :class:`~repro.obs.metrics.MetricsRegistry`, a span
:class:`~repro.obs.tracing.SpanTracer`, a decode-path
:class:`~repro.obs.profiler.PhaseProfiler`, and a
:class:`~repro.obs.recorder.FlightRecorder` — and is threaded through
``ServeEngine``, the cluster simulation, and the gateway.  Components are
independently optional: ``Observability(tracer=SpanTracer())`` traces
without metering.

Pay-for-what-you-use is the contract (a prior attempt at this layer was
reverted at 12.7 % overhead; the budget is ≤5 % fully enabled):

* a **disabled** bundle (:meth:`Observability.disabled`, or simply passing
  ``obs=None`` to any constructor) has ``tracer``/``profiler``/``recorder``
  of ``None`` — hot paths guard with one ``is not None`` test — and the
  shared :data:`~repro.obs.metrics.NULL_REGISTRY`, whose metrics are no-op
  objects, so setup code resolves its counters unconditionally;
* metric objects are resolved **once at setup** and updated by plain
  attribute arithmetic — never looked up, formatted, or wrapped in a
  closure per token;
* aggregation (snapshots, Prometheus text, hot-spot ranking, trace JSON)
  happens only when asked for.

A fleet shares one bundle across replicas via :meth:`Observability.for_track`,
which reuses every component but gives each replica its own trace track and
label set — all spans land on one timeline, all series in one registry.
"""

from __future__ import annotations

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               NullMetric, NullRegistry, NULL_REGISTRY,
                               DEFAULT_LATENCY_BUCKETS)
from repro.obs.profiler import PhaseProfiler, PHASES
from repro.obs.recorder import (FlightRecorder, InvariantViolation,
                                invariant_violation)
from repro.obs.tracing import SpanTracer, TraceSchemaError, validate_trace

__all__ = ["Observability", "MetricsRegistry", "Counter", "Gauge", "Histogram",
           "NullMetric", "NullRegistry", "NULL_REGISTRY",
           "DEFAULT_LATENCY_BUCKETS", "SpanTracer", "TraceSchemaError",
           "validate_trace", "PhaseProfiler", "PHASES", "FlightRecorder",
           "InvariantViolation", "invariant_violation"]


class Observability:
    """A bundle of observability instruments shared by one run.

    ``registry`` is never ``None`` (a disabled bundle holds the null
    registry), so call sites resolve metrics unconditionally.  ``tracer``,
    ``profiler`` and ``recorder`` are ``None`` when off — the hot-path
    convention is a single ``is not None`` guard around each use.  ``track``
    and ``labels`` tell an engine *where* to emit: which trace ``tid`` its
    spans belong on and which label set (e.g. ``{"replica": "r0"}``) its
    series carry.
    """

    __slots__ = ("registry", "tracer", "profiler", "recorder", "track", "labels")

    def __init__(self, registry=None, tracer=None, profiler=None,
                 recorder=None, track: int = 0, labels=None):
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer
        self.profiler = profiler
        self.recorder = recorder
        self.track = int(track)
        self.labels = dict(labels) if labels else {}

    @classmethod
    def enabled(cls, trace: bool = True, profile: bool = True,
                record: bool = True, recorder_capacity: int = 512,
                track: int = 0, labels=None) -> "Observability":
        """A live bundle: real registry, plus whichever extras are requested."""
        return cls(registry=MetricsRegistry(),
                   tracer=SpanTracer() if trace else None,
                   profiler=PhaseProfiler() if profile else None,
                   recorder=FlightRecorder(recorder_capacity) if record else None,
                   track=track, labels=labels)

    @classmethod
    def disabled(cls) -> "Observability":
        """An inert bundle: null registry, no tracer/profiler/recorder."""
        return cls()

    @property
    def is_enabled(self) -> bool:
        """Whether any instrument is live."""
        return (self.registry is not NULL_REGISTRY or self.tracer is not None
                or self.profiler is not None or self.recorder is not None)

    def for_track(self, track: int, **labels) -> "Observability":
        """A view sharing every instrument but emitting on its own track.

        The fleet hands each replica ``obs.for_track(tid, replica=name)``:
        spans interleave on one tracer timeline (distinct ``tid`` rows) and
        series share the registry, split by the added labels.
        """
        merged = dict(self.labels)
        merged.update({key: str(value) for key, value in labels.items()})
        return Observability(registry=self.registry, tracer=self.tracer,
                             profiler=self.profiler, recorder=self.recorder,
                             track=track, labels=merged)
