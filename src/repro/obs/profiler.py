"""Phase profiler for the decode hot path.

Answers the ROADMAP's blocking question for the batched array-kernel
overhaul: *where does a serve step actually spend its wall time?*  The
engine and the paged KV cache bracket a fixed set of phases around
``perf_counter()`` pairs:

===================  ==========================================================
phase                what it times
===================  ==========================================================
``admission``        queue pops, budget/page-capacity checks, prefix adoption
``prefill_forward``  the prompt-suffix ``forward_step`` call
``decode_forward``   the batched one-token-per-request ``forward_step`` call
``page_gather``      block-table gathers into dense K/V (inside the forwards)
``quantize_append``  quantise-on-append of new K/V (inside the forwards)
``sampling``         logits → token sampling and stop-condition checks
``release``          retirement: radix indexing, page release, record building
===================  ==========================================================

``page_gather`` and ``quantize_append`` are *nested* inside the forward
phases (the cache is called per layer from within ``forward_step``), so the
ranked table reports them with ``within="forward"`` and computes ``share``
over the top-level phases only — the shares of top-level phases sum to 1.

The implementation is a pair of preallocated fixed-size arrays indexed by
integer phase ids — ``add()`` is two list-index increments, no dict lookup,
no closure, no allocation — so a fully-enabled profiler stays inside the
serve layer's ≤5 % overhead budget.  Phase timings are always wall-clock
(``perf_counter``), even under a virtual engine clock: the profiler's job is
accounting for *real compute*, which is precisely what the virtual clock
abstracts away.
"""

from __future__ import annotations

__all__ = ["PhaseProfiler", "PHASES", "ADMISSION", "PREFILL_FORWARD",
           "DECODE_FORWARD", "PAGE_GATHER", "QUANT_APPEND", "SAMPLING",
           "RELEASE"]

#: Integer phase ids — list indices into the profiler's preallocated slots.
ADMISSION = 0
PREFILL_FORWARD = 1
DECODE_FORWARD = 2
PAGE_GATHER = 3
QUANT_APPEND = 4
SAMPLING = 5
RELEASE = 6

#: Display names, indexed by phase id.
PHASES = ("admission", "prefill_forward", "decode_forward", "page_gather",
          "quantize_append", "sampling", "release")

#: Phases measured inside a forward call (excluded from the share basis).
_NESTED = frozenset((PAGE_GATHER, QUANT_APPEND))


class PhaseProfiler:
    """Accumulate wall seconds and call counts per fixed phase slot."""

    __slots__ = ("total_s", "calls")

    def __init__(self):
        self.total_s = [0.0] * len(PHASES)
        self.calls = [0] * len(PHASES)

    def add(self, phase: int, dt: float) -> None:
        """Book ``dt`` wall seconds against ``phase`` (one timed bracket)."""
        self.total_s[phase] += dt
        self.calls[phase] += 1

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's slots into this one (fleet aggregation)."""
        for phase in range(len(PHASES)):
            self.total_s[phase] += other.total_s[phase]
            self.calls[phase] += other.calls[phase]

    @property
    def top_level_s(self) -> float:
        """Wall seconds across the non-nested phases (the share basis)."""
        return sum(t for phase, t in enumerate(self.total_s)
                   if phase not in _NESTED)

    def hotspots(self) -> list:
        """Ranked hot-spot rows, hottest first — the kernel-overhaul shopping list.

        Each row: ``phase``, ``calls``, ``total_s``, ``mean_us`` (per call),
        ``share`` of top-level wall time, and ``within`` (``"forward"`` for
        the nested cache phases, ``"step"`` otherwise).  Phases never hit
        are omitted.
        """
        basis = max(self.top_level_s, 1e-12)
        rows = []
        for phase, name in enumerate(PHASES):
            if not self.calls[phase]:
                continue
            total = self.total_s[phase]
            rows.append({
                "phase": name,
                "within": "forward" if phase in _NESTED else "step",
                "calls": self.calls[phase],
                "total_s": total,
                "mean_us": total / self.calls[phase] * 1e6,
                "share": (total / basis) if phase not in _NESTED else None,
            })
        rows.sort(key=lambda row: -row["total_s"])
        return rows

    def snapshot(self) -> dict:
        """JSON-ready dump: per-phase totals plus the ranked table."""
        return {
            "phases": {name: {"calls": self.calls[phase],
                              "total_s": self.total_s[phase]}
                       for phase, name in enumerate(PHASES) if self.calls[phase]},
            "top_level_s": self.top_level_s,
            "hotspots": self.hotspots(),
        }
