"""Per-request span tracing with Chrome trace-event export.

A :class:`SpanTracer` collects *complete* spans (``ph: "X"`` — a name, a
start, a duration) and *instant* markers (``ph: "i"``) stamped on whichever
clock the emitting engine runs — :class:`~repro.serve.engine.WallClock`
seconds or :class:`~repro.serve.engine.VirtualClock` seconds; the tracer
never reads a clock itself.  Because every replica of a fleet co-simulation
shares one virtual timeline, exporting all of their spans into one file
puts arrivals, engine steps, reroutes, scale events and injected faults on a
single timeline that `Perfetto <https://ui.perfetto.dev>`_ (or
``chrome://tracing``) loads directly.

Tracks map onto the trace-event ``(pid, tid)`` pair: everything shares one
``pid`` and each logical actor — the fleet router, each replica, a lone
engine — gets its own ``tid``, named via a ``thread_name`` metadata event
(:meth:`SpanTracer.name_track`).  Timestamps are exported in microseconds
(the trace-event unit), as exact integer-rounded values so two identical
virtual-clock runs serialise byte-identically.

The engines emit spans only at request-terminal time, from timestamps they
already track for their latency reports — tracing adds no per-token closures
or allocations to the hot path, and a ``None`` tracer costs one attribute
test per step.
"""

from __future__ import annotations

import json

from repro.core.ioutils import atomic_write_text

__all__ = ["SpanTracer", "validate_trace", "TraceSchemaError"]

#: The shared trace-event process id (one simulated process per export).
TRACE_PID = 1


def _us(t_s: float) -> int:
    """Seconds → integer microseconds (the trace-event timebase).

    Integer microseconds keep exports byte-identical across platforms;
    nothing in the stack schedules at sub-microsecond granularity.
    """
    return int(round(t_s * 1e6))


class SpanTracer:
    """Append-only span/instant collector for one run (see module docstring)."""

    def __init__(self):
        self._events = []
        self._track_names = {}
        self._seq = 0  # insertion tiebreak: equal-ts events keep emit order

    def __len__(self) -> int:
        return len(self._events)

    def name_track(self, track: int, name: str) -> None:
        """Name a ``tid`` (rendered as the row label in Perfetto)."""
        self._track_names[int(track)] = str(name)

    def complete(self, name: str, start_s: float, end_s: float, track: int = 0,
                 args: dict = None) -> None:
        """One finished span ``[start_s, end_s]`` on ``track``."""
        if end_s < start_s:
            raise ValueError(f"span {name!r} ends ({end_s}) before it starts ({start_s})")
        event = {"name": name, "ph": "X", "ts": _us(start_s),
                 "dur": _us(end_s) - _us(start_s), "pid": TRACE_PID,
                 "tid": int(track)}
        if args:
            event["args"] = dict(args)
        event["_seq"] = self._seq
        self._seq += 1
        self._events.append(event)

    def instant(self, name: str, t_s: float, track: int = 0, args: dict = None) -> None:
        """A zero-duration marker (a fault, a reroute, a scale decision)."""
        event = {"name": name, "ph": "i", "ts": _us(t_s), "pid": TRACE_PID,
                 "tid": int(track), "s": "t"}
        if args:
            event["args"] = dict(args)
        event["_seq"] = self._seq
        self._seq += 1
        self._events.append(event)

    # --------------------------------------------------------------- export
    def events(self) -> list:
        """Export-ordered copy: metadata first, then ``(ts, emit order)``.

        The sort guarantees the validator's per-track monotonicity, and the
        insertion-sequence tiebreak makes equal-instant ordering (fault
        before arrival before step) explicit in the file.
        """
        meta = [
            {"name": "thread_name", "ph": "M", "pid": TRACE_PID, "tid": track,
             "args": {"name": self._track_names[track]}}
            for track in sorted(self._track_names)
        ]
        body = sorted(self._events, key=lambda e: (e["ts"], e["_seq"]))
        out = meta + [{k: v for k, v in event.items() if k != "_seq"}
                      for event in body]
        return out

    def to_json(self) -> str:
        """The Chrome trace-event JSON document (an object with traceEvents)."""
        return json.dumps({"traceEvents": self.events(),
                           "displayTimeUnit": "ms"}, indent=None,
                          separators=(",", ":"), sort_keys=True)

    def write(self, path) -> None:
        """Atomically write the trace JSON to ``path``."""
        atomic_write_text(path, self.to_json())


class TraceSchemaError(ValueError):
    """A trace-event list that Perfetto/chrome://tracing would reject."""


def validate_trace(events) -> dict:
    """Check trace-event JSON structure; returns per-track statistics.

    Accepts either the exported document (``{"traceEvents": [...]}``) or a
    bare event list.  Enforces what the viewers actually require — and what
    the determinism tests pin:

    * every event has ``name``/``ph``/``pid``/``tid`` and a known phase
      (``X`` complete, ``i`` instant, ``M`` metadata);
    * ``X`` events carry integer ``ts`` and a non-negative integer ``dur``,
      ``i`` events carry integer ``ts``;
    * within each ``(pid, tid)`` track, non-metadata events appear in
      non-decreasing ``ts`` order (the exporter sorts; a violation means a
      hand-built file or a clock that ran backwards).

    Returns ``{"events": n, "tracks": {(pid, tid): {"spans": .., "instants":
    .., "first_ts": .., "last_ts": ..}}, "names": {...}}``.
    """
    if isinstance(events, dict):
        if "traceEvents" not in events:
            raise TraceSchemaError("trace document has no 'traceEvents' key")
        events = events["traceEvents"]
    if not isinstance(events, list):
        raise TraceSchemaError("trace events must be a list")
    tracks = {}
    names = {}
    last_ts = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceSchemaError(f"event {index} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise TraceSchemaError(f"event {index} is missing {key!r}")
        phase = event["ph"]
        if phase not in ("X", "i", "M"):
            raise TraceSchemaError(f"event {index} has unknown phase {phase!r}")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), int):
            raise TraceSchemaError(f"event {index} has no integer 'ts'")
        if phase == "X" and not (isinstance(event.get("dur"), int)
                                 and event["dur"] >= 0):
            raise TraceSchemaError(
                f"event {index} ('X') needs a non-negative integer 'dur'")
        track = (event["pid"], event["tid"])
        if track in last_ts and event["ts"] < last_ts[track]:
            raise TraceSchemaError(
                f"event {index} breaks ts monotonicity on track {track}: "
                f"{event['ts']} < {last_ts[track]}")
        last_ts[track] = event["ts"]
        stats = tracks.setdefault(track, {"spans": 0, "instants": 0,
                                          "first_ts": event["ts"], "last_ts": 0})
        stats["spans" if phase == "X" else "instants"] += 1
        stats["first_ts"] = min(stats["first_ts"], event["ts"])
        end = event["ts"] + (event.get("dur", 0) if phase == "X" else 0)
        stats["last_ts"] = max(stats["last_ts"], end)
        record = names.setdefault(event["name"], {"count": 0, "total_us": 0})
        record["count"] += 1
        if phase == "X":
            record["total_us"] += event["dur"]
    return {"events": len(events), "tracks": tracks, "names": names}
