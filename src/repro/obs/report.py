"""Render saved observability artifacts as plain-text reports.

Backs the ``repro obs-report`` CLI: point it at a file a run saved —
a Chrome trace-event JSON export (from ``chaos-bench --trace-out`` or
:meth:`~repro.obs.tracing.SpanTracer.write`) or a profiler/metrics dump —
and get an aligned-table summary on stdout.  The trace path validates the
file against the same schema checks the tests pin
(:func:`~repro.obs.tracing.validate_trace`), so a report doubles as a
lint of the export.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.obs.tracing import validate_trace

__all__ = ["load_report_file", "render_trace_report", "render_hotspot_report",
           "render_report"]


def load_report_file(path) -> dict:
    """Read a JSON artifact and tag what kind of report it supports.

    Returns ``{"kind": "trace" | "profile", "data": <parsed json>}``.
    Trace documents are recognised by their ``traceEvents`` key (or by being
    a bare event list); profiler snapshots by a ``hotspots`` key (either at
    top level or nested under ``"profile"``, as the overhead benchmark
    saves them).
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, list) or (isinstance(data, dict) and "traceEvents" in data):
        return {"kind": "trace", "data": data}
    if isinstance(data, dict) and ("hotspots" in data or "profile" in data):
        return {"kind": "profile", "data": data}
    raise ValueError(
        f"{path}: not a trace export or profiler snapshot "
        "(expected 'traceEvents' or 'hotspots')")


def _track_names(events) -> dict:
    """``tid -> thread name`` from the export's metadata events."""
    names = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event["tid"]] = event.get("args", {}).get("name", "")
    return names


def render_trace_report(data) -> str:
    """Per-track and per-span-name summaries of a trace-event export."""
    stats = validate_trace(data)
    events = data["traceEvents"] if isinstance(data, dict) else data
    labels = _track_names(events)
    track_rows = []
    for (pid, tid), track in sorted(stats["tracks"].items()):
        track_rows.append({
            "track": labels.get(tid, f"pid{pid}/tid{tid}"),
            "spans": track["spans"],
            "instants": track["instants"],
            "start_ms": track["first_ts"] / 1000.0,
            "end_ms": track["last_ts"] / 1000.0,
        })
    name_rows = [
        {"name": name, "count": record["count"],
         "total_ms": record["total_us"] / 1000.0}
        for name, record in sorted(stats["names"].items(),
                                   key=lambda item: -item[1]["total_us"])
    ]
    return (f"trace: {stats['events']} events across "
            f"{len(stats['tracks'])} tracks\n\n"
            f"{format_table(track_rows)}\n\n{format_table(name_rows)}\n")


def render_hotspot_report(data) -> str:
    """Ranked hot-spot table from a saved profiler snapshot."""
    profile = data.get("profile", data) if isinstance(data, dict) else data
    rows = profile.get("hotspots", [])
    if not rows:
        return "profile: no phases recorded\n"
    rendered = [
        {"phase": row["phase"], "within": row["within"], "calls": row["calls"],
         "total_s": row["total_s"], "mean_us": row["mean_us"],
         "share": "-" if row.get("share") is None else f"{row['share']:.1%}"}
        for row in rows
    ]
    total = profile.get("top_level_s", 0.0)
    return (f"decode-path profile: {total:.4f}s across top-level phases\n\n"
            f"{format_table(rendered)}\n")


def render_report(path) -> str:
    """Dispatch on artifact kind; the body of ``repro obs-report``."""
    loaded = load_report_file(path)
    if loaded["kind"] == "trace":
        return render_trace_report(loaded["data"])
    return render_hotspot_report(loaded["data"])
