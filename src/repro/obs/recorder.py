"""Bounded flight recorder: the last N events before something went wrong.

A :class:`FlightRecorder` is a fixed-capacity ring of recent structured
events (dispatches, faults, retirements, scale decisions...).  Recording is
one ``deque.append`` of a dict — cheap enough to leave on during chaos
stress runs — and the ring bounds memory no matter how long the run.

Its purpose is forensic: when chaos invariant enforcement or the KV-page
audit raises, the raiser wraps the error in :class:`InvariantViolation`
(:func:`invariant_violation`), which *automatically* attaches the
recorder's contents — the exception carries the full ring in
``.flight_recorder``, its message ends with the last few events, and
:meth:`InvariantViolation.write_dump` saves the complete ring as JSON for
offline analysis.  A conservation bug is thus reported with the event
context that produced it, not just the final tally.
"""

from __future__ import annotations

import json
from collections import deque

from repro.core.ioutils import atomic_write_text

__all__ = ["FlightRecorder", "InvariantViolation", "invariant_violation"]


class FlightRecorder:
    """Fixed-capacity ring of recent ``{"t", "kind", ...}`` events."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._events = deque(maxlen=self.capacity)
        self._recorded = 0

    def record(self, t: float, kind: str, **fields) -> None:
        """Append one event; oldest events fall off past ``capacity``."""
        event = {"t": float(t), "kind": str(kind)}
        event.update(fields)
        self._events.append(event)
        self._recorded += 1

    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (≥ ``len``; the ring keeps the newest)."""
        return self._recorded

    def events(self) -> list:
        """Oldest-to-newest copy of the retained window."""
        return [dict(event) for event in self._events]

    def last(self, n: int) -> list:
        """The ``n`` most recent events, oldest first."""
        if n < 0:
            raise ValueError("n must be >= 0")
        window = list(self._events)
        return [dict(event) for event in window[len(window) - min(n, len(window)):]]

    def to_json(self) -> str:
        return json.dumps({"capacity": self.capacity, "recorded": self._recorded,
                           "events": self.events()}, default=float)

    def write(self, path) -> None:
        """Atomically dump the retained window as JSON."""
        atomic_write_text(path, self.to_json())


class InvariantViolation(RuntimeError):
    """A run-enforced invariant failed; carries the flight-recorder window.

    ``flight_recorder`` is the recorder's retained event list at raise time
    (empty when the run had no recorder).  The message is the underlying
    violation followed by a short tail of recent events, so the context
    travels with the traceback even when nobody inspects the attribute.
    """

    def __init__(self, message: str, flight_recorder=None):
        self.flight_recorder = list(flight_recorder or [])
        if self.flight_recorder:
            tail = self.flight_recorder[-5:]
            rendered = "; ".join(
                f"[{event['t']:.6f}] {event['kind']}"
                + ("".join(f" {k}={v}" for k, v in event.items()
                           if k not in ("t", "kind")))
                for event in tail)
            message = (f"{message}\nflight recorder "
                       f"({len(self.flight_recorder)} events retained, "
                       f"last {len(tail)}): {rendered}")
        super().__init__(message)

    def write_dump(self, path) -> None:
        """Save the attached window as JSON (offline forensics)."""
        atomic_write_text(path, json.dumps({"events": self.flight_recorder},
                                           default=float))


def invariant_violation(message: str, recorder: FlightRecorder = None) -> InvariantViolation:
    """Build an :class:`InvariantViolation` with the recorder auto-attached."""
    return InvariantViolation(
        message, flight_recorder=recorder.events() if recorder is not None else None)
