"""In-process metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` holds every series the stack emits.  The design
constraint — inherited from the overhead budget that sank the first attempt
at this layer — is *pay-for-what-you-use*:

* hot-path updates are plain attribute arithmetic on pre-looked-up metric
  objects (``counter.inc(n)`` is one addition; nothing is formatted, hashed
  or locked per update — callers resolve their metrics once at setup, never
  per token);
* histograms bucket on insert (one ``bisect`` into a precomputed boundary
  tuple) and defer *all* aggregation — means, rendering, cumulative bucket
  sums — to :meth:`MetricsRegistry.snapshot` / :meth:`to_prometheus` time;
* a disabled registry is the :data:`NULL_REGISTRY` null object: every method
  returns a shared no-op metric whose ``inc``/``set``/``observe`` do nothing,
  so library code can instrument unconditionally and still cost near zero
  when observability is off.

Snapshots are deterministic: series are emitted sorted by ``(name, labels)``
regardless of registration order, and every stored value is derived from
caller-provided numbers (no wall-clock reads happen in this module), so two
identical virtual-clock runs produce byte-identical ``snapshot()`` dicts.

:meth:`MetricsRegistry.to_prometheus` renders the text exposition format
version 0.0.4 (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value``
lines, histogram ``_bucket``/``_sum``/``_count`` expansion with cumulative
``le`` buckets) — what a Prometheus server scrapes off the gateway's
``GET /metrics``.
"""

from __future__ import annotations

import re
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetric", "NullRegistry", "NULL_REGISTRY",
           "DEFAULT_LATENCY_BUCKETS"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram boundaries for latency-like observations in seconds:
#: sub-millisecond to minutes, roughly logarithmic, fixed so histograms from
#: different runs are always mergeable/comparable bucket-for-bucket.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                           0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_labels(labels) -> tuple:
    """Normalise a labels mapping into a sorted, hashable key."""
    if not labels:
        return ()
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


class Counter:
    """Monotonically increasing count (tokens processed, requests finished)."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0

    def inc(self, n=1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge for ±deltas")
        self.value += n


class Gauge:
    """A value that goes up and down (queue depth, pages in use)."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n


class Histogram:
    """Fixed-bucket distribution (latencies); cumulative sums deferred to read.

    ``buckets`` are the upper bounds of the finite buckets; one overflow
    bucket (``+Inf``) is implicit.  ``observe`` is one bisect plus three
    increments — no allocation, no percentile math until snapshot time.
    """

    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "", labels: tuple = (),
                 buckets=DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram bucket bounds must be strictly increasing")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last (read-time)."""
        total = 0
        out = []
        for bound, count in zip(self.buckets + (float("inf"),), self.counts):
            total += count
            out.append((bound, total))
        return out


class NullMetric:
    """No-op stand-in for every metric type; the disabled hot path."""

    __slots__ = ()

    def inc(self, n=1) -> None:
        pass

    def dec(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_METRIC = NullMetric()


class NullRegistry:
    """A disabled registry: every lookup returns the shared no-op metric.

    Lets call sites keep one code path — resolve metrics at setup, update
    unconditionally — while a disabled configuration costs one empty method
    call per update and produces empty snapshots/expositions.
    """

    def counter(self, name, help="", labels=None) -> NullMetric:
        return _NULL_METRIC

    def gauge(self, name, help="", labels=None) -> NullMetric:
        return _NULL_METRIC

    def histogram(self, name, help="", labels=None, buckets=None) -> NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> dict:
        return {}

    def to_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Registry of named metric series, keyed on ``(name, sorted labels)``.

    Lookups are memoized: asking for the same (name, labels) twice returns
    the same object, so modules sharing a registry accumulate into shared
    series (the cluster gives every replica the same registry with a
    ``replica`` label).  Re-registering a name as a different metric type is
    an error — a typo that would otherwise silently split a series.
    """

    def __init__(self):
        self._metrics = {}   # (name, labels) -> metric
        self._types = {}     # name -> class
        self._help = {}      # name -> help text

    def _get(self, cls, name, help, labels, **kwargs):
        _check_name(name)
        key = (name, _check_labels(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if self._types[name] is not cls:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{self._types[name].__name__}, not a {cls.__name__}")
            return metric
        if name in self._types and self._types[name] is not cls:
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{self._types[name].__name__}, not a {cls.__name__}")
        metric = cls(name, help=help, labels=key[1], **kwargs)
        self._metrics[key] = metric
        self._types[name] = cls
        if help:
            self._help.setdefault(name, help)
        return metric

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", labels=None,
                  buckets=DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """Deterministic plain-dict dump of every series (sorted, JSON-ready).

        Keys are ``name`` or ``name{k=v,...}`` with labels sorted; histogram
        values expand to ``{"buckets": [[le, cumulative], ...], "sum",
        "count"}``.  Independent of registration order, so two identical
        runs produce byte-identical JSON.
        """
        out = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            key = name
            if labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            if isinstance(metric, Histogram):
                out[key] = {
                    "buckets": [["+Inf" if bound == float("inf") else bound, total]
                                for bound, total in metric.cumulative()],
                    "sum": metric.sum,
                    "count": metric.count,
                }
            else:
                out[key] = metric.value
        return out

    # ------------------------------------------------------------ exposition
    @staticmethod
    def _label_str(labels, extra=()) -> str:
        items = list(labels) + list(extra)
        if not items:
            return ""
        def escape(value):
            return (str(value).replace("\\", "\\\\").replace('"', '\\"')
                    .replace("\n", "\\n"))
        body = ",".join(f'{k}="{escape(v)}"' for k, v in items)
        return "{" + body + "}"

    @staticmethod
    def _fmt(value) -> str:
        if value == float("inf"):
            return "+Inf"
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return repr(value) if isinstance(value, float) else str(value)

    def to_prometheus(self) -> str:
        """Text exposition format 0.0.4 (the ``GET /metrics`` body)."""
        type_names = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}
        by_name = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append(metric)
        lines = []
        for name in sorted(by_name):
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {type_names[self._types[name]]}")
            for metric in by_name[name]:
                if isinstance(metric, Histogram):
                    for bound, total in metric.cumulative():
                        label_str = self._label_str(
                            metric.labels, extra=[("le", self._fmt(bound))])
                        lines.append(f"{name}_bucket{label_str} {total}")
                    label_str = self._label_str(metric.labels)
                    lines.append(f"{name}_sum{label_str} {self._fmt(metric.sum)}")
                    lines.append(f"{name}_count{label_str} {metric.count}")
                else:
                    label_str = self._label_str(metric.labels)
                    lines.append(f"{name}{label_str} {self._fmt(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")
