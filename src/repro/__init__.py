"""BBAL reproduction: Bidirectional Block Floating Point quantisation for LLMs.

This package is a full-stack, pure-Python reproduction of the DAC 2025 paper
*"BBAL: A Bidirectional Block Floating Point-Based Quantisation Accelerator for
Large Language Models"*.  It contains:

``repro.core``
    The BBFP / BFP / INT / minifloat quantisers, shared-exponent selection
    strategies, the analytic quantisation-error model and the overlap-width
    search (the paper's primary algorithmic contribution).

``repro.llm``
    A from-scratch numpy transformer substrate (autodiff, training, synthetic
    corpus, model zoo) plus a quantisation-aware inference path used for all
    perplexity experiments.

``repro.baselines``
    Simplified but faithful re-implementations of the comparator quantisation
    schemes: SmoothQuant, OmniQuant, Olive and Oltron.

``repro.nonlinear``
    The exponent-segmented LUT nonlinear computation unit (Softmax, SiLU,
    GELU, sigmoid) and its pipelined hardware model.

``repro.hardware``
    Gate-level analytic area/energy models: adders, carry chains, multipliers,
    MAC units, PEs, SRAM/DRAM.

``repro.accelerator``
    The BBAL accelerator: weight-stationary PE-array cycle-level simulator,
    buffers, scheduler and efficiency metrics.

``repro.analysis`` / ``repro.experiments``
    Drivers that regenerate every table and figure of the paper's evaluation.
"""

from repro.core.bbfp import BBFPConfig, BBFPTensor, quantize_bbfp, bbfp_quantize_dequantize
from repro.core.blockfp import BFPConfig, BFPTensor, quantize_bfp, bfp_quantize_dequantize
from repro.core.integer import IntQuantConfig, int_quantize_dequantize
from repro.core.fp_formats import FP4_E2M1, FP8_E4M3, FP8_E5M2, minifloat_quantize_dequantize

__version__ = "1.0.0"

__all__ = [
    "BBFPConfig",
    "BBFPTensor",
    "quantize_bbfp",
    "bbfp_quantize_dequantize",
    "BFPConfig",
    "BFPTensor",
    "quantize_bfp",
    "bfp_quantize_dequantize",
    "IntQuantConfig",
    "int_quantize_dequantize",
    "FP4_E2M1",
    "FP8_E4M3",
    "FP8_E5M2",
    "minifloat_quantize_dequantize",
    "__version__",
]
