"""BBAL reproduction: Bidirectional Block Floating Point quantisation for LLMs.

This package is a full-stack, pure-Python reproduction of the DAC 2025 paper
*"BBAL: A Bidirectional Block Floating Point-Based Quantisation Accelerator for
Large Language Models"*.  It contains:

``repro.core``
    The BBFP / BFP / INT / minifloat quantisers, shared-exponent selection
    strategies, the analytic quantisation-error model and the overlap-width
    search (the paper's primary algorithmic contribution).

``repro.quant``
    The unified quantizer API: a format registry, one spec-string grammar and
    a single dispatch path (``parse_spec`` / ``get_quantizer``) used by the
    CLI, the inference schemes, the mixed-precision search and every
    experiment driver.

``repro.llm``
    A from-scratch numpy transformer substrate (autodiff, training, synthetic
    corpus, model zoo) plus a quantisation-aware inference path used for all
    perplexity experiments.

``repro.serve``
    The online serving layer: a per-layer KV cache with optional quantised
    storage (any registered spec string), the incremental
    ``InferenceModel.forward_step`` decode path, a continuous-batching
    engine with FIFO admission under a KV token budget, and the
    ``serve_bench`` benchmark (``repro serve-bench``).

``repro.baselines``
    Simplified but faithful re-implementations of the comparator quantisation
    schemes: SmoothQuant, OmniQuant, Olive and Oltron.

``repro.nonlinear``
    The exponent-segmented LUT nonlinear computation unit (Softmax, SiLU,
    GELU, sigmoid) and its pipelined hardware model.

``repro.hardware``
    Gate-level analytic area/energy models: adders, carry chains, multipliers,
    MAC units, PEs, SRAM/DRAM.

``repro.accelerator``
    The BBAL accelerator: weight-stationary PE-array cycle-level simulator,
    buffers, scheduler and efficiency metrics.

``repro.analysis`` / ``repro.experiments``
    Drivers that regenerate every table and figure of the paper's evaluation.

``repro.pipeline``
    The parallel, cached experiment pipeline behind ``repro run``: a
    dependency-aware process-pool scheduler (model-zoo training is a shared
    upstream stage), a content-addressed result cache keyed on the source
    tree, and a resumable JSON run manifest.

Formats and spec strings
------------------------

Every number format is addressable by a short, case-insensitive *spec
string*; ``repro.quant.parse_spec`` is the single parser and
``repro.quant.get_quantizer`` returns a memoized polymorphic quantizer
(``quantize`` / ``dequantize`` / ``quantize_dequantize`` /
``bits_per_element``).  One example per family:

``"BBFP(4,2)"`` (bidirectional BFP, the paper's format)
    >>> from repro.quant import get_quantizer
    >>> get_quantizer("BBFP(4,2)").bits_per_element()
    6.15625

``"bfp8@b32"`` (vanilla block floating point; ``@b<N>`` sets the block size)
    >>> get_quantizer("bfp8@b32").name
    'BFP8'

``"int8"`` (symmetric integer; ``@pc`` per-channel, ``@b<N>`` per-block)
    >>> get_quantizer("int8").spec
    'INT8'

``"fp8_e4m3"`` (minifloat: ``fp16``, ``bf16``, ``fp4``, any ``fp<t>_e<E>m<M>``)
    >>> get_quantizer("fp8_e4m3").name
    'FP8_E4M3'

``"mxfp4"`` (OCP microscaling: ``mxfp4`` / ``mxfp6_e2m3`` / ``mxfp6_e3m2`` / ``mxfp8``)
    >>> get_quantizer("mxfp4").bits_per_element()
    4.25

``"bie4"`` (bi-exponent BFP; ``@k<N>`` sets the outlier budget)
    >>> get_quantizer("bie4").name
    'BiE4(k=2)'

Optional ``@`` modifiers compose after any base spec: ``@b<N>`` block size,
``@e<N>`` shared-exponent bits, ``@k<N>`` BiE outlier count, ``@s<N>`` MX
scale bits, ``@c<R>`` INT clip ratio, ``@pc`` / ``@pt`` INT granularity.
Configurations round-trip through ``config.spec`` (the canonical string) and
through ``config.to_dict()`` / ``Config.from_dict()`` for JSON manifests; see
:mod:`repro.quant` for the registry and the grammar in full.
"""

from repro.core.bbfp import BBFPConfig, BBFPTensor, quantize_bbfp, bbfp_quantize_dequantize
from repro.core.blockfp import BFPConfig, BFPTensor, quantize_bfp, bfp_quantize_dequantize
from repro.core.integer import IntQuantConfig, int_quantize_dequantize
from repro.core.fp_formats import FP4_E2M1, FP8_E4M3, FP8_E5M2, minifloat_quantize_dequantize
from repro.quant import (
    QuantizedTensor,
    Quantizer,
    UnknownFormatError,
    get_quantizer,
    parse_spec,
)

__version__ = "1.1.0"

__all__ = [
    "BBFPConfig",
    "BBFPTensor",
    "quantize_bbfp",
    "bbfp_quantize_dequantize",
    "BFPConfig",
    "BFPTensor",
    "quantize_bfp",
    "bfp_quantize_dequantize",
    "IntQuantConfig",
    "int_quantize_dequantize",
    "FP4_E2M1",
    "FP8_E4M3",
    "FP8_E5M2",
    "minifloat_quantize_dequantize",
    "Quantizer",
    "QuantizedTensor",
    "UnknownFormatError",
    "parse_spec",
    "get_quantizer",
    "__version__",
]
