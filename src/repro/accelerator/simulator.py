"""Cycle-level accelerator simulator (DnnWeaver-style performance/energy model).

For a given :class:`~repro.accelerator.config.AcceleratorConfig` and a
:class:`~repro.accelerator.workloads.LayerWorkload`, the simulator produces:

* cycle counts split into linear (PE array) and nonlinear (LUT unit) work —
  the Fig. 1(b) runtime breakdown;
* data traffic (DRAM and on-chip buffers) at the format's bits-per-element;
* the static / DRAM / buffer / core energy breakdown of Fig. 9;
* effective throughput, used together with the PE-area model for the
  iso-area comparison of Fig. 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.pe_array import PEArray
from repro.accelerator.workloads import LayerWorkload, MatmulOp, NonlinearOp
from repro.hardware.energy import EnergyBreakdown
from repro.nonlinear.unit import NonlinearUnit, NonlinearUnitCost

__all__ = ["NonlinearEngine", "PerformanceReport", "AcceleratorSimulator"]


@dataclass(frozen=True)
class NonlinearEngine:
    """Timing/energy wrapper around a nonlinear unit cost model.

    ``style="bbal"`` uses the paper's BBFP segmented-LUT unit;
    ``style="fp32"`` models a conventional full-precision vector unit (the
    baseline implied by Fig. 1(b)): each transcendental evaluation takes
    several cycles on a narrow vector datapath, which is why the nonlinear
    share of the runtime grows with sequence length.
    """

    cost: NonlinearUnitCost
    style: str = "bbal"
    fp32_elements_per_cycle: float = 2.0
    fp32_cycles_per_vector_overhead: int = 12

    def op_cycles(self, op: NonlinearOp) -> int:
        if self.style == "fp32":
            per_vector = math.ceil(op.vector_length / self.fp32_elements_per_cycle)
            return op.num_vectors * (per_vector + self.fp32_cycles_per_vector_overhead)
        beats = math.ceil(op.vector_length / self.cost.sustained_elements_per_cycle)
        pipeline = self.cost.pipeline_stages + self.cost.subtable_load_cycles
        return op.num_vectors * beats + pipeline

    def op_energy_j(self, op: NonlinearOp) -> float:
        cycles = self.op_cycles(op)
        per_cycle = self.cost.gates.dynamic_energy_j(self.cost.technology, activity=0.35)
        scale = 2.5 if self.style == "fp32" else 1.0  # FP transcendentals toggle far more logic
        return cycles * per_cycle * scale

    def static_power_w(self) -> float:
        return self.cost.static_power_w()

    def area_um2(self) -> float:
        return self.cost.area_um2()


@dataclass
class PerformanceReport:
    """Outcome of simulating one workload on one accelerator configuration."""

    config_name: str
    linear_cycles: int = 0
    nonlinear_cycles: int = 0
    total_macs: int = 0
    nonlinear_elements: int = 0
    dram_bytes: float = 0.0
    buffer_read_bytes: float = 0.0
    buffer_write_bytes: float = 0.0
    clock_hz: float = 1.0e9
    energy: EnergyBreakdown = field(default=None)
    per_op: list = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.linear_cycles + self.nonlinear_cycles

    @property
    def runtime_s(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def linear_runtime_s(self) -> float:
        return self.linear_cycles / self.clock_hz

    @property
    def nonlinear_runtime_s(self) -> float:
        return self.nonlinear_cycles / self.clock_hz

    @property
    def throughput_gmacs(self) -> float:
        if self.runtime_s == 0:
            return 0.0
        return self.total_macs / self.runtime_s / 1e9

    def as_dict(self) -> dict:
        return {
            "config": self.config_name,
            "linear_cycles": self.linear_cycles,
            "nonlinear_cycles": self.nonlinear_cycles,
            "total_cycles": self.total_cycles,
            "runtime_s": self.runtime_s,
            "throughput_gmacs": self.throughput_gmacs,
            "dram_bytes": self.dram_bytes,
            "energy": self.energy.as_dict() if self.energy else None,
        }


class AcceleratorSimulator:
    """Run transformer-layer workloads through the BBAL cost model."""

    def __init__(self, config: AcceleratorConfig, nonlinear_style: str = "bbal"):
        if nonlinear_style not in ("bbal", "fp32"):
            raise ValueError("nonlinear_style must be 'bbal' or 'fp32'")
        self.config = config
        self.array = PEArray(config.pe_rows, config.pe_cols)
        self.pe = config.pe_design()
        self.buffers = config.buffers()
        self.dram = config.dram()
        self.nonlinear = NonlinearEngine(
            cost=NonlinearUnit(config.nonlinear).cost(), style=nonlinear_style
        )

    # ------------------------------------------------------------ traffic
    def _matmul_traffic_bytes(self, op: MatmulOp) -> dict:
        bits = self.config.element_bits()
        to_bytes = bits / 8.0
        stats = self.array.gemm(op)
        input_reads = op.input_elements * math.ceil(op.n / self.config.pe_cols)
        weight_reads = op.weight_elements
        output_writes = op.output_elements
        return {
            "dram": (op.input_elements + op.weight_elements + op.output_elements) * to_bytes,
            "buffer_read": (input_reads + weight_reads) * to_bytes,
            "buffer_write": output_writes * to_bytes,
            "cycles": stats.cycles,
        }

    # ------------------------------------------------------------ execution
    def run(self, workload: LayerWorkload) -> PerformanceReport:
        """Simulate ``workload`` (all repeats) and return the performance/energy report."""
        report = PerformanceReport(
            config_name=self.config.strategy_name,
            clock_hz=self.config.technology.clock_frequency_hz,
        )
        core_energy = 0.0
        buffer_energy = 0.0
        dram_energy = 0.0

        input_buf = self.buffers["input"]
        weight_buf = self.buffers["weight"]
        output_buf = self.buffers["output"]

        for op in workload.matmuls:
            traffic = self._matmul_traffic_bytes(op)
            cycles = traffic["cycles"] * workload.repeat
            report.linear_cycles += cycles
            report.total_macs += op.macs * workload.repeat
            report.dram_bytes += traffic["dram"] * workload.repeat
            report.buffer_read_bytes += traffic["buffer_read"] * workload.repeat
            report.buffer_write_bytes += traffic["buffer_write"] * workload.repeat

            core_energy += op.macs * workload.repeat * self.pe.energy_per_mac_j(
                self.config.technology
            )
            buffer_energy += workload.repeat * (
                input_buf.read_energy_j(traffic["buffer_read"] * 0.5)
                + weight_buf.read_energy_j(traffic["buffer_read"] * 0.5)
                + output_buf.write_energy_j(traffic["buffer_write"])
            )
            dram_energy += workload.repeat * self.dram.access_energy_j(traffic["dram"])
            report.per_op.append(
                {"op": op.name, "kind": "matmul", "cycles": cycles, "macs": op.macs * workload.repeat}
            )

        for op in workload.nonlinears:
            cycles = self.nonlinear.op_cycles(op) * workload.repeat
            report.nonlinear_cycles += cycles
            report.nonlinear_elements += op.elements * workload.repeat
            core_energy += self.nonlinear.op_energy_j(op) * workload.repeat
            # Nonlinear operands stream through the output buffer.
            element_bytes = op.elements * 2.0  # FP16 staging of nonlinear operands
            buffer_energy += workload.repeat * (
                output_buf.read_energy_j(element_bytes) + output_buf.write_energy_j(element_bytes)
            )
            report.per_op.append(
                {"op": op.name, "kind": "nonlinear", "cycles": cycles,
                 "elements": op.elements * workload.repeat}
            )

        runtime_s = (report.linear_cycles + report.nonlinear_cycles) / report.clock_hz
        static_power = (
            self.config.num_pes * self.pe.static_power_w(self.config.technology)
            + sum(buf.leakage_power_w() for buf in self.buffers.values())
            + self.nonlinear.static_power_w()
        )
        report.energy = EnergyBreakdown(
            static_j=static_power * runtime_s,
            dram_j=dram_energy,
            buffer_j=buffer_energy,
            core_j=core_energy,
        )
        return report
