"""BBAL accelerator: weight-stationary PE array + nonlinear unit, cycle-level model.

The paper evaluates BBAL with a DnnWeaver-derived cycle-level simulator on top
of the synthesised PE/buffer costs.  This package provides the equivalent:

* :mod:`repro.accelerator.workloads` turns a transformer configuration into
  the GEMM and nonlinear operator list of one decoder layer (prefill or
  decode);
* :mod:`repro.accelerator.pe_array` models the weight-stationary systolic
  array timing (tiling, fill/drain, weight reload);
* :mod:`repro.accelerator.simulator` runs a workload through the array, the
  buffers, DRAM and the nonlinear unit and returns cycles plus the
  static/DRAM/buffer/core energy breakdown of Fig. 9;
* :mod:`repro.accelerator.metrics` produces the iso-area throughput/accuracy
  comparison of Fig. 8 and the derived efficiency metrics;
* :mod:`repro.accelerator.roofline` classifies every operator as compute or
  memory bound under the configuration's compute/bandwidth ceilings;
* :mod:`repro.accelerator.scheduling` tiles GEMMs onto the on-chip buffers
  with minimal DRAM traffic;
* :mod:`repro.accelerator.generation` composes prefill + decode into an
  end-to-end generation latency/energy estimate.
"""

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.workloads import LayerWorkload, MatmulOp, NonlinearOp, decoder_workload
from repro.accelerator.pe_array import PEArray, matmul_cycles
from repro.accelerator.simulator import AcceleratorSimulator, PerformanceReport
from repro.accelerator.metrics import iso_area_design_points, IsoAreaPoint
from repro.accelerator.roofline import RooflineModel, analyze_workload, roofline_for_config
from repro.accelerator.scheduling import TilingChoice, best_tiling
from repro.accelerator.generation import GenerationLatencyModel, GenerationReport
from repro.accelerator.dataflow import DataflowStats, compare_dataflows, dataflow_stats

__all__ = [
    "AcceleratorConfig",
    "LayerWorkload",
    "MatmulOp",
    "NonlinearOp",
    "decoder_workload",
    "PEArray",
    "matmul_cycles",
    "AcceleratorSimulator",
    "PerformanceReport",
    "iso_area_design_points",
    "IsoAreaPoint",
    "RooflineModel",
    "analyze_workload",
    "roofline_for_config",
    "TilingChoice",
    "best_tiling",
    "GenerationLatencyModel",
    "GenerationReport",
    "DataflowStats",
    "compare_dataflows",
    "dataflow_stats",
]
