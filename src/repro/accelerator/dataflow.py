"""Dataflow comparison: weight-stationary (the BBAL choice) vs alternatives.

Fig. 7 fixes BBAL's PE array to a *weight-stationary* dataflow: a tile of
weights is preloaded and held in the PEs while input activations stream
through, which is the natural choice when the same weights are reused across
many tokens (prefill) and when weights are the quantised, density-critical
operand.  This module models the two classic alternatives at the same
abstraction level as :mod:`repro.accelerator.pe_array` so the choice can be
ablated instead of assumed:

* **output stationary** — each PE accumulates one output element in place
  while both operands stream by; partial sums never move, but both operands
  are re-fetched per output tile;
* **input stationary** — the activation tile is pinned and weights stream;
  symmetric to weight stationary with the roles of the operands swapped.

For every dataflow the model reports cycles (preload + streaming + drain per
tile), PE utilisation and the on-chip traffic of each operand class, which is
what actually differs between the dataflows — the MAC count obviously does
not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.pe_array import matmul_cycles
from repro.accelerator.workloads import MatmulOp

__all__ = ["DataflowStats", "dataflow_stats", "compare_dataflows", "DATAFLOWS"]

DATAFLOWS = ("weight_stationary", "output_stationary", "input_stationary")


@dataclass(frozen=True)
class DataflowStats:
    """Cycle and operand-traffic summary of one GEMM under one dataflow."""

    dataflow: str
    cycles: int
    macs: int
    utilisation: float
    input_reads: int
    weight_reads: int
    partial_sum_transfers: int

    def as_dict(self) -> dict:
        return {
            "dataflow": self.dataflow,
            "cycles": self.cycles,
            "utilisation": self.utilisation,
            "input_reads": self.input_reads,
            "weight_reads": self.weight_reads,
            "partial_sum_transfers": self.partial_sum_transfers,
        }


def _utilisation(op: MatmulOp, cycles: int, rows: int, cols: int) -> float:
    if cycles <= 0:
        return 0.0
    return min(1.0, op.macs / (cycles * rows * cols))


def _weight_stationary(op: MatmulOp, rows: int, cols: int) -> DataflowStats:
    stats = matmul_cycles(op, rows, cols)
    k_tiles = math.ceil(op.k / rows)
    n_tiles = math.ceil(op.n / cols)
    return DataflowStats(
        dataflow="weight_stationary",
        cycles=stats.cycles,
        macs=op.macs,
        utilisation=stats.utilisation,
        # The input tile is re-streamed once per column tile of weights.
        input_reads=op.input_elements * n_tiles,
        weight_reads=op.weight_elements,
        # Partial sums leave the array once per K tile (they are reduced
        # across K tiles outside the array, by the FP adder of Fig. 7).
        partial_sum_transfers=op.output_elements * k_tiles,
    )


def _output_stationary(op: MatmulOp, rows: int, cols: int) -> DataflowStats:
    m_tiles = math.ceil(op.m / rows)
    n_tiles = math.ceil(op.n / cols)
    # Each output tile accumulates over the full K dimension in place; both
    # operand tiles stream through during those K cycles, plus fill/drain.
    per_tile = op.k + rows + cols
    cycles = m_tiles * n_tiles * per_tile
    return DataflowStats(
        dataflow="output_stationary",
        cycles=cycles,
        macs=op.macs,
        utilisation=_utilisation(op, cycles, rows, cols),
        input_reads=op.input_elements * n_tiles,
        weight_reads=op.weight_elements * m_tiles,
        # Outputs are written exactly once; no partial sums ever move.
        partial_sum_transfers=op.output_elements,
    )


def _input_stationary(op: MatmulOp, rows: int, cols: int) -> DataflowStats:
    # Symmetric to weight stationary with the operand roles swapped: the
    # activation tile is pinned, the weight matrix streams through.
    k_tiles = math.ceil(op.k / rows)
    m_tiles = math.ceil(op.m / cols)
    per_tile = rows + op.n + rows + cols
    cycles = k_tiles * m_tiles * per_tile
    return DataflowStats(
        dataflow="input_stationary",
        cycles=cycles,
        macs=op.macs,
        utilisation=_utilisation(op, cycles, rows, cols),
        input_reads=op.input_elements,
        weight_reads=op.weight_elements * m_tiles,
        partial_sum_transfers=op.output_elements * k_tiles,
    )


_BUILDERS = {
    "weight_stationary": _weight_stationary,
    "output_stationary": _output_stationary,
    "input_stationary": _input_stationary,
}


def dataflow_stats(op: MatmulOp, rows: int, cols: int, dataflow: str) -> DataflowStats:
    """Evaluate one GEMM under one dataflow on a ``rows x cols`` array."""
    if rows < 1 or cols < 1:
        raise ValueError("array dimensions must be positive")
    if dataflow not in _BUILDERS:
        raise ValueError(f"unknown dataflow {dataflow!r}; known: {DATAFLOWS}")
    return _BUILDERS[dataflow](op, rows, cols)


def compare_dataflows(op: MatmulOp, rows: int = 32, cols: int = 32,
                      bits_per_element: float = 8.0) -> list:
    """Evaluate one GEMM under every dataflow; returns one dict row per dataflow.

    ``bits_per_element`` converts the operand reads into on-chip bytes so the
    traffic columns are comparable with the buffer-energy model of Fig. 9.
    """
    rows_out = []
    for dataflow in DATAFLOWS:
        stats = dataflow_stats(op, rows, cols, dataflow)
        row = stats.as_dict()
        row["operand_bytes"] = (stats.input_reads + stats.weight_reads) * bits_per_element / 8.0
        row["output_bytes"] = stats.partial_sum_transfers * 2.0  # FP16 partial sums
        rows_out.append(row)
    return rows_out
