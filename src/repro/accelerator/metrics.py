"""Derived accelerator metrics: iso-area design points (Fig. 8) and efficiency.

Fig. 8 compares quantisation strategies at *equal total PE area*: a strategy
with a smaller PE fits more PEs into the budget and therefore achieves higher
peak throughput, while its accuracy (average Llama / OPT perplexity) comes
from the linear-quantisation experiments.  This module computes the hardware
half of that comparison; the experiment driver joins it with the perplexity
results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.pe import pe_for_strategy
from repro.hardware.technology import TSMC28_LIKE, TechnologyModel

__all__ = ["IsoAreaPoint", "iso_area_design_points", "efficiency_metric"]


@dataclass(frozen=True)
class IsoAreaPoint:
    """One strategy evaluated under the shared PE-area budget."""

    strategy_name: str
    pe_area_um2: float
    num_pes: int
    peak_macs_per_cycle: int
    relative_throughput: float

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy_name,
            "pe_area_um2": self.pe_area_um2,
            "num_pes": self.num_pes,
            "peak_macs_per_cycle": self.peak_macs_per_cycle,
            "relative_throughput": self.relative_throughput,
        }


def iso_area_design_points(strategies, area_budget_um2: float = None,
                           technology: TechnologyModel = TSMC28_LIKE,
                           reference_pes: int = 1024) -> list:
    """Compute PE count and relative peak throughput per strategy at equal area.

    ``area_budget_um2`` defaults to the area of ``reference_pes`` PEs of the
    *largest* strategy in the list (the paper sizes the budget so the biggest
    design, BBFP(6,3), still fits a full array).
    """
    designs = {}
    for strategy in strategies:
        design = pe_for_strategy(strategy)
        designs[design.name] = design
    if not designs:
        raise ValueError("need at least one strategy")

    if area_budget_um2 is None:
        largest = max(d.area_um2(technology) for d in designs.values())
        area_budget_um2 = largest * reference_pes
    if area_budget_um2 <= 0:
        raise ValueError("area budget must be positive")

    points = []
    for name, design in designs.items():
        area = design.area_um2(technology)
        num_pes = int(area_budget_um2 // area)
        points.append(
            IsoAreaPoint(
                strategy_name=name,
                pe_area_um2=area,
                num_pes=num_pes,
                peak_macs_per_cycle=num_pes,
                relative_throughput=0.0,
            )
        )
    max_macs = max(p.peak_macs_per_cycle for p in points) or 1
    return [
        IsoAreaPoint(
            strategy_name=p.strategy_name,
            pe_area_um2=p.pe_area_um2,
            num_pes=p.num_pes,
            peak_macs_per_cycle=p.peak_macs_per_cycle,
            relative_throughput=p.peak_macs_per_cycle / max_macs,
        )
        for p in points
    ]


def efficiency_metric(throughput_gmacs: float, area_mm2: float, power_w: float) -> float:
    """The paper's efficiency metric: throughput / (area x power)."""
    if area_mm2 <= 0 or power_w <= 0:
        raise ValueError("area and power must be positive")
    return throughput_gmacs / (area_mm2 * power_w)
