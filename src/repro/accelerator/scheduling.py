"""GEMM tiling for the weight-stationary PE array (on-chip buffer scheduling).

The cycle-level simulator charges one DRAM transfer per tensor element, which
is only achievable when a GEMM's working set is tiled so that every tile fits
the on-chip buffers (Fig. 7: input buffer, weight buffer, output buffer).
This module picks those tiles:

* a tile is a ``(tile_m, tile_k, tile_n)`` block of the ``(M x K) @ (K x N)``
  GEMM;
* the input tile (``tile_m x tile_k``), weight tile (``tile_k x tile_n``) and
  output tile (``tile_m x tile_n``) must fit their respective buffers at the
  format's bits per element (double buffering halves the usable capacity);
* DRAM traffic follows the classic tiled-GEMM formula — weights are read once,
  inputs are re-read once per weight-column tile, outputs are written once —
  so bigger ``tile_n`` reduces input re-reads and bigger ``tile_k`` reduces
  partial-sum spilling.

The search is exhaustive over power-of-two-ish tile candidates (the spaces are
tiny), returning the tiling with minimal DRAM traffic.  The denser the number
format, the larger the tiles that fit — a second, quieter reason BBFP beats
FP16-class formats on energy in Fig. 9 beyond the per-byte cost itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.workloads import MatmulOp

__all__ = ["TilingChoice", "candidate_tile_sizes", "traffic_for_tiling", "best_tiling"]


@dataclass(frozen=True)
class TilingChoice:
    """One legal tiling of a GEMM onto the on-chip buffers."""

    op: MatmulOp
    tile_m: int
    tile_k: int
    tile_n: int
    dram_bytes: float
    input_buffer_bytes: float
    weight_buffer_bytes: float
    output_buffer_bytes: float

    @property
    def tiles(self) -> int:
        """Number of tiles the GEMM is split into."""
        return (
            math.ceil(self.op.m / self.tile_m)
            * math.ceil(self.op.k / self.tile_k)
            * math.ceil(self.op.n / self.tile_n)
        )

    def as_dict(self) -> dict:
        return {
            "op": self.op.name,
            "tile_m": self.tile_m,
            "tile_k": self.tile_k,
            "tile_n": self.tile_n,
            "tiles": self.tiles,
            "dram_bytes": self.dram_bytes,
        }


def candidate_tile_sizes(dimension: int) -> list:
    """Power-of-two tile candidates up to (and including) the full dimension."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    sizes = []
    size = 1
    while size < dimension:
        sizes.append(size)
        size *= 2
    sizes.append(dimension)
    return sizes


def traffic_for_tiling(op: MatmulOp, tile_m: int, tile_k: int, tile_n: int,
                       bits_per_element: float) -> float:
    """DRAM bytes moved by the classic output-stationary-at-tile-level schedule.

    * weights: read exactly once (``K x N`` elements);
    * inputs: the full ``M x K`` input is re-read once per column-tile pass,
      i.e. ``ceil(N / tile_n)`` times;
    * outputs: written once, plus re-read/re-written once per extra reduction
      pass when ``K`` does not fit a single ``tile_k`` (partial-sum spilling).
    """
    bytes_per_element = bits_per_element / 8.0
    n_passes = math.ceil(op.n / tile_n)
    k_passes = math.ceil(op.k / tile_k)
    weight_bytes = op.weight_elements * bytes_per_element
    input_bytes = op.input_elements * n_passes * bytes_per_element
    output_bytes = op.output_elements * (2 * k_passes - 1) * bytes_per_element
    return weight_bytes + input_bytes + output_bytes


def best_tiling(op: MatmulOp, config: AcceleratorConfig,
                double_buffered: bool = True) -> TilingChoice:
    """Pick the legal tiling of ``op`` with the lowest DRAM traffic.

    A tiling is legal when the input, weight and output tiles simultaneously
    fit their buffers (at half capacity when ``double_buffered``).  The search
    is exhaustive over power-of-two candidates; ties break towards fewer
    tiles (less control overhead).
    """
    bits = config.element_bits()
    bytes_per_element = bits / 8.0
    capacity_factor = 0.5 if double_buffered else 1.0
    input_capacity = config.input_buffer_bytes * capacity_factor
    weight_capacity = config.weight_buffer_bytes * capacity_factor
    output_capacity = config.output_buffer_bytes * capacity_factor

    best = None
    for tile_m in candidate_tile_sizes(op.m):
        for tile_k in candidate_tile_sizes(op.k):
            input_tile = tile_m * tile_k * bytes_per_element
            if input_tile > input_capacity:
                continue
            for tile_n in candidate_tile_sizes(op.n):
                weight_tile = tile_k * tile_n * bytes_per_element
                # Partial sums are staged at FP16 width before the FP adder.
                output_tile = tile_m * tile_n * 2.0
                if weight_tile > weight_capacity or output_tile > output_capacity:
                    continue
                traffic = traffic_for_tiling(op, tile_m, tile_k, tile_n, bits)
                choice = TilingChoice(
                    op=op,
                    tile_m=tile_m,
                    tile_k=tile_k,
                    tile_n=tile_n,
                    dram_bytes=traffic,
                    input_buffer_bytes=input_tile,
                    weight_buffer_bytes=weight_tile,
                    output_buffer_bytes=output_tile,
                )
                if best is None or (choice.dram_bytes, choice.tiles) < (best.dram_bytes, best.tiles):
                    best = choice
    if best is None:
        raise ValueError(
            f"no legal tiling for {op.name}: even a 1x1x1 tile exceeds the buffers "
            f"(input={config.input_buffer_bytes}B, weight={config.weight_buffer_bytes}B, "
            f"output={config.output_buffer_bytes}B)"
        )
    return best
