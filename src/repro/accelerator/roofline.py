"""Roofline analysis of the BBAL accelerator on transformer workloads.

Fig. 1(b) of the paper argues from *measured* runtime that nonlinear operators
become the bottleneck at long sequence lengths; Fig. 8 compares formats under
an iso-area budget.  A roofline model makes the mechanism behind both figures
explicit: every operator is either

* **compute bound** — limited by the PE array's peak MAC rate, which scales
  with the number of PEs the area budget affords (and therefore with the PE
  area of the chosen number format, Table III), or
* **memory bound** — limited by DRAM bandwidth divided by the bytes moved per
  MAC, which scales with the format's bits per element (Table I).

A cheaper, denser format therefore lifts *both* roofs at once, which is why
the BBFP(3,x) points of Fig. 8 move up and to the right simultaneously.  The
decode phase (matrix–vector products against the KV cache) sits far to the
left of the ridge and is memory bound for every format — exactly the regime
where the bits-per-element advantage matters most.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.workloads import LayerWorkload, MatmulOp

__all__ = ["RooflineModel", "OperatorAnalysis", "roofline_for_config", "analyze_workload"]


@dataclass(frozen=True)
class RooflineModel:
    """A classic two-ceiling roofline.

    Parameters
    ----------
    peak_macs_per_s:
        Compute ceiling (MAC/s): PEs x MACs-per-cycle-per-PE x clock.
    dram_bandwidth_bytes_per_s:
        Memory ceiling (bytes/s) of the external memory interface.
    name:
        Label used in reports.
    """

    peak_macs_per_s: float
    dram_bandwidth_bytes_per_s: float
    name: str = "accelerator"

    def __post_init__(self):
        if self.peak_macs_per_s <= 0:
            raise ValueError("peak_macs_per_s must be positive")
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ValueError("dram_bandwidth_bytes_per_s must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (MAC/byte) at which the two ceilings meet."""
        return self.peak_macs_per_s / self.dram_bandwidth_bytes_per_s

    def attainable_macs_per_s(self, arithmetic_intensity: float) -> float:
        """Attainable MAC rate at the given arithmetic intensity (MAC/byte)."""
        if arithmetic_intensity <= 0:
            return 0.0
        return min(self.peak_macs_per_s, self.dram_bandwidth_bytes_per_s * arithmetic_intensity)

    def is_compute_bound(self, arithmetic_intensity: float) -> bool:
        return arithmetic_intensity >= self.ridge_intensity


@dataclass(frozen=True)
class OperatorAnalysis:
    """Roofline verdict for one GEMM of a workload."""

    name: str
    macs: int
    dram_bytes: float
    arithmetic_intensity: float
    attainable_macs_per_s: float
    bound: str
    runtime_s: float

    def as_dict(self) -> dict:
        return {
            "op": self.name,
            "macs": self.macs,
            "dram_bytes": self.dram_bytes,
            "arithmetic_intensity": self.arithmetic_intensity,
            "attainable_gmacs": self.attainable_macs_per_s / 1e9,
            "bound": self.bound,
            "runtime_s": self.runtime_s,
        }


def matmul_arithmetic_intensity(op: MatmulOp, bits_per_element: float) -> float:
    """MACs per DRAM byte of one GEMM, assuming each operand is streamed once.

    The three tensors (input, weight, output) are each moved once at the
    format's storage width; outputs are counted at the same width, matching
    the traffic model of :class:`repro.accelerator.simulator.AcceleratorSimulator`.
    """
    bytes_moved = (op.input_elements + op.weight_elements + op.output_elements) * (
        bits_per_element / 8.0
    )
    if bytes_moved == 0:
        return float("inf")
    return op.macs / bytes_moved


def roofline_for_config(config: AcceleratorConfig,
                        dram_bandwidth_gbytes_per_s: float = 25.6) -> RooflineModel:
    """Build the roofline implied by an accelerator configuration.

    The compute ceiling comes from the PE count and clock; the memory ceiling
    is an explicit parameter because the paper's evaluation (like most
    accelerator papers) assumes a fixed LPDDR-class external interface shared
    by every compared design.
    """
    peak = config.num_pes * config.technology.clock_frequency_hz
    return RooflineModel(
        peak_macs_per_s=peak,
        dram_bandwidth_bytes_per_s=dram_bandwidth_gbytes_per_s * 1e9,
        name=config.strategy_name,
    )


def analyze_workload(config: AcceleratorConfig, workload: LayerWorkload,
                     dram_bandwidth_gbytes_per_s: float = 25.6) -> list:
    """Classify every GEMM of ``workload`` as compute or memory bound.

    Returns one :class:`OperatorAnalysis` per matmul (repeats folded in); the
    nonlinear operators are not MAC-shaped and are handled by the cycle-level
    simulator instead.
    """
    roofline = roofline_for_config(config, dram_bandwidth_gbytes_per_s)
    bits = config.element_bits()
    results = []
    for op in workload.matmuls:
        intensity = matmul_arithmetic_intensity(op, bits)
        attainable = roofline.attainable_macs_per_s(intensity)
        macs = op.macs * workload.repeat
        dram_bytes = workload.repeat * (
            (op.input_elements + op.weight_elements + op.output_elements) * bits / 8.0
        )
        results.append(
            OperatorAnalysis(
                name=op.name,
                macs=macs,
                dram_bytes=dram_bytes,
                arithmetic_intensity=intensity,
                attainable_macs_per_s=attainable,
                bound="compute" if roofline.is_compute_bound(intensity) else "memory",
                runtime_s=macs / attainable if attainable > 0 else float("inf"),
            )
        )
    return results
