"""End-to-end generation latency model (prefill + auto-regressive decode).

Fig. 1(b) of the paper sweeps the decoder-stage sequence length; real serving
workloads consist of a *prefill* pass over the prompt followed by one decode
step per generated token against a growing KV cache.  This module composes
the per-layer workloads of :mod:`repro.accelerator.workloads` into that
two-phase trace and runs both phases through the cycle-level simulator,
producing the metrics a deployment decision actually uses:

* time-to-first-token (the prefill latency),
* per-token decode latency and tokens/s,
* total energy split by phase,
* the share of nonlinear cycles in each phase (the Fig. 1(b) observation,
  extended to decode).

Because the decode phase is dominated by memory traffic (matrix–vector
products), this is where the bits-per-element difference between BBFP and the
FP16/BFP baselines shows up most strongly — the extension experiment the
benches record alongside the paper's own figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import AcceleratorSimulator, PerformanceReport
from repro.accelerator.workloads import decoder_workload
from repro.llm.config import ModelConfig

__all__ = ["GenerationPhase", "GenerationReport", "GenerationLatencyModel"]


@dataclass(frozen=True)
class GenerationPhase:
    """Aggregate of one phase (prefill, or all decode steps together)."""

    name: str
    cycles: int
    linear_cycles: int
    nonlinear_cycles: int
    macs: int
    dram_bytes: float
    energy_j: float

    @property
    def nonlinear_share(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.nonlinear_cycles / self.cycles

    def as_dict(self) -> dict:
        return {
            "phase": self.name,
            "cycles": self.cycles,
            "nonlinear_share": self.nonlinear_share,
            "macs": self.macs,
            "dram_bytes": self.dram_bytes,
            "energy_j": self.energy_j,
        }


@dataclass(frozen=True)
class GenerationReport:
    """Latency/energy summary of one prompt + generation run."""

    config_name: str
    prompt_tokens: int
    generated_tokens: int
    clock_hz: float
    prefill: GenerationPhase
    decode: GenerationPhase

    @property
    def time_to_first_token_s(self) -> float:
        return self.prefill.cycles / self.clock_hz

    @property
    def decode_latency_per_token_s(self) -> float:
        if self.generated_tokens == 0:
            return 0.0
        return self.decode.cycles / self.clock_hz / self.generated_tokens

    @property
    def tokens_per_second(self) -> float:
        latency = self.decode_latency_per_token_s
        return 1.0 / latency if latency > 0 else float("inf")

    @property
    def total_energy_j(self) -> float:
        return self.prefill.energy_j + self.decode.energy_j

    @property
    def energy_per_token_j(self) -> float:
        if self.generated_tokens == 0:
            return 0.0
        return self.decode.energy_j / self.generated_tokens

    def as_dict(self) -> dict:
        return {
            "config": self.config_name,
            "prompt_tokens": self.prompt_tokens,
            "generated_tokens": self.generated_tokens,
            "time_to_first_token_s": self.time_to_first_token_s,
            "decode_latency_per_token_s": self.decode_latency_per_token_s,
            "tokens_per_second": self.tokens_per_second,
            "total_energy_j": self.total_energy_j,
            "energy_per_token_j": self.energy_per_token_j,
            "prefill": self.prefill.as_dict(),
            "decode": self.decode.as_dict(),
        }


def _phase_from_report(name: str, report: PerformanceReport,
                       dram_bytes_per_cycle: float) -> GenerationPhase:
    # The PE-array simulator counts compute cycles only; a phase cannot finish
    # faster than its DRAM traffic can be delivered, so the slower of the two
    # limits the phase (the roofline argument applied per phase).
    memory_cycles = int(report.dram_bytes / dram_bytes_per_cycle) if dram_bytes_per_cycle > 0 else 0
    return GenerationPhase(
        name=name,
        cycles=max(report.total_cycles, memory_cycles),
        linear_cycles=report.linear_cycles,
        nonlinear_cycles=report.nonlinear_cycles,
        macs=report.total_macs,
        dram_bytes=report.dram_bytes,
        energy_j=report.energy.total_j if report.energy else 0.0,
    )


def _merge_phases(name: str, phases) -> GenerationPhase:
    return GenerationPhase(
        name=name,
        cycles=sum(p.cycles for p in phases),
        linear_cycles=sum(p.linear_cycles for p in phases),
        nonlinear_cycles=sum(p.nonlinear_cycles for p in phases),
        macs=sum(p.macs for p in phases),
        dram_bytes=sum(p.dram_bytes for p in phases),
        energy_j=sum(p.energy_j for p in phases),
    )


class GenerationLatencyModel:
    """Estimate prompt-to-completion latency on a BBAL (or baseline) accelerator.

    Parameters
    ----------
    config:
        Accelerator instance (number format, array geometry, buffers).
    model_config:
        Transformer architecture whose decoder layers are simulated.
    nonlinear_style:
        ``"bbal"`` for the paper's segmented-LUT unit, ``"fp32"`` for the
        conventional vector unit of the Fig. 1(b) baseline.
    decode_step_stride:
        Decode steps are simulated at this stride and interpolated in between
        (the per-step workload changes slowly with KV length); 1 simulates
        every step exactly.
    dram_bandwidth_gbytes_per_s:
        External memory bandwidth used as the per-phase memory-time floor; the
        decode phase is normally bound by it, which is where the format's
        bits-per-element shows up as tokens/s.
    """

    def __init__(self, config: AcceleratorConfig, model_config: ModelConfig,
                 nonlinear_style: str = "bbal", decode_step_stride: int = 16,
                 dram_bandwidth_gbytes_per_s: float = 25.6):
        if decode_step_stride < 1:
            raise ValueError("decode_step_stride must be >= 1")
        if dram_bandwidth_gbytes_per_s <= 0:
            raise ValueError("dram_bandwidth_gbytes_per_s must be positive")
        self.config = config
        self.model_config = model_config
        self.simulator = AcceleratorSimulator(config, nonlinear_style=nonlinear_style)
        self.decode_step_stride = decode_step_stride
        self.dram_bytes_per_cycle = (
            dram_bandwidth_gbytes_per_s * 1e9 / config.technology.clock_frequency_hz
        )

    def estimate(self, prompt_tokens: int, generated_tokens: int) -> GenerationReport:
        """Simulate a prefill of ``prompt_tokens`` plus ``generated_tokens`` decode steps."""
        if prompt_tokens < 1:
            raise ValueError("prompt_tokens must be >= 1")
        if generated_tokens < 0:
            raise ValueError("generated_tokens must be >= 0")

        prefill_workload = decoder_workload(self.model_config, prompt_tokens, phase="prefill")
        prefill = _phase_from_report(
            "prefill", self.simulator.run(prefill_workload), self.dram_bytes_per_cycle
        )

        decode_phases = []
        step = 0
        while step < generated_tokens:
            kv_len = prompt_tokens + step
            stride = min(self.decode_step_stride, generated_tokens - step)
            workload = decoder_workload(self.model_config, kv_len, phase="decode")
            report = self.simulator.run(workload)
            phase = _phase_from_report(f"decode@{kv_len}", report, self.dram_bytes_per_cycle)
            # The stride steps around this KV length are charged the same cost.
            decode_phases.append(
                GenerationPhase(
                    name=phase.name,
                    cycles=phase.cycles * stride,
                    linear_cycles=phase.linear_cycles * stride,
                    nonlinear_cycles=phase.nonlinear_cycles * stride,
                    macs=phase.macs * stride,
                    dram_bytes=phase.dram_bytes * stride,
                    energy_j=phase.energy_j * stride,
                )
            )
            step += stride

        decode = _merge_phases("decode", decode_phases) if decode_phases else GenerationPhase(
            "decode", 0, 0, 0, 0, 0.0, 0.0
        )
        return GenerationReport(
            config_name=self.config.strategy_name,
            prompt_tokens=prompt_tokens,
            generated_tokens=generated_tokens,
            clock_hz=self.config.technology.clock_frequency_hz,
            prefill=prefill,
            decode=decode,
        )
