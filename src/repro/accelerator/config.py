"""Accelerator configuration (PE array geometry, buffers, number format)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bbfp import BBFPConfig
from repro.core.blockfp import BFPConfig
from repro.hardware.memory import DRAMModel, SRAMBuffer
from repro.hardware.pe import PEDesign, pe_for_strategy
from repro.hardware.technology import TSMC28_LIKE, TechnologyModel
from repro.nonlinear.unit import NonlinearUnitConfig

__all__ = ["AcceleratorConfig", "bits_per_element"]


def bits_per_element(strategy) -> float:
    """Average storage bits per tensor element for a quantisation strategy.

    Used to convert tensor shapes into DRAM/buffer traffic.  Named baselines
    use their published storage formats (4-bit codes plus outlier metadata).
    """
    if isinstance(strategy, (BBFPConfig, BFPConfig)):
        return strategy.equivalent_bit_width()
    if isinstance(strategy, str):
        key = strategy.strip().lower()
        if key == "oltron":
            return 4.25
        if key in ("olive", "oliver"):
            return 4.5
        if key == "fp16":
            return 16.0
        raise ValueError(f"unknown strategy {strategy!r}")
    if hasattr(strategy, "equivalent_bit_width"):
        return float(strategy.equivalent_bit_width())
    raise TypeError(f"unsupported strategy type {type(strategy)!r}")


@dataclass(frozen=True)
class AcceleratorConfig:
    """One BBAL (or baseline) accelerator instance.

    Parameters
    ----------
    strategy:
        Number format / quantisation strategy of the PE array: a
        :class:`BBFPConfig`, :class:`BFPConfig` or one of the named baselines
        (``"Oltron"``, ``"Olive"``).
    pe_rows, pe_cols:
        Systolic array geometry (the paper streams 4x4 BBFP-encoded tiles, but
        the evaluation arrays are larger; 32x32 is the default here).
    input_buffer_bytes, weight_buffer_bytes, output_buffer_bytes:
        On-chip SRAM capacities.
    nonlinear:
        Configuration of the attached nonlinear computation unit.
    technology:
        Process constants shared by every cost model.
    """

    strategy: object
    pe_rows: int = 32
    pe_cols: int = 32
    input_buffer_bytes: int = 64 * 1024
    weight_buffer_bytes: int = 128 * 1024
    output_buffer_bytes: int = 64 * 1024
    nonlinear: NonlinearUnitConfig = field(default_factory=NonlinearUnitConfig)
    technology: TechnologyModel = TSMC28_LIKE

    def __post_init__(self):
        if self.pe_rows < 1 or self.pe_cols < 1:
            raise ValueError("PE array dimensions must be positive")
        bits_per_element(self.strategy)  # validates the strategy

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def strategy_name(self) -> str:
        if isinstance(self.strategy, str):
            return self.strategy
        return getattr(self.strategy, "name", str(self.strategy))

    def pe_design(self) -> PEDesign:
        return pe_for_strategy(self.strategy)

    def element_bits(self) -> float:
        return bits_per_element(self.strategy)

    def buffers(self) -> dict:
        return {
            "input": SRAMBuffer("input", self.input_buffer_bytes, self.technology),
            "weight": SRAMBuffer("weight", self.weight_buffer_bytes, self.technology),
            "output": SRAMBuffer("output", self.output_buffer_bytes, self.technology),
        }

    def dram(self) -> DRAMModel:
        return DRAMModel(self.technology)

    def pe_array_area_um2(self, include_registers: bool = True) -> float:
        return self.num_pes * self.pe_design().area_um2(self.technology, include_registers=include_registers)

    def buffer_area_um2(self) -> float:
        return sum(buf.area_um2() for buf in self.buffers().values())

    def total_area_um2(self) -> float:
        from repro.nonlinear.unit import NonlinearUnit

        nonlinear_area = NonlinearUnit(self.nonlinear).cost().area_um2()
        return self.pe_array_area_um2() + self.buffer_area_um2() + nonlinear_area
