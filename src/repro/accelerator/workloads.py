"""Transformer layer workloads: the GEMMs and nonlinear operators the accelerator runs.

Fig. 1(b) breaks the decoder-stage runtime into the linear operators
("QKV + Matmul + Up + Down + Gate") and the nonlinear ones
("Softmax + SiLU"); the same operator list drives the energy breakdown of
Fig. 9 and the throughput comparisons of Fig. 8.  This module builds that
operator list from a model configuration, for both the prefill phase
(sequence-length-sized GEMMs) and the auto-regressive decode phase
(matrix-vector products against a KV cache of the given length).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.config import ModelConfig

__all__ = ["MatmulOp", "NonlinearOp", "LayerWorkload", "decoder_workload", "LINEAR_OP_NAMES"]

LINEAR_OP_NAMES = ("query", "key", "value", "attn_scores", "attn_context", "out_proj",
                   "gate", "up", "down", "fc1", "fc2")


@dataclass(frozen=True)
class MatmulOp:
    """One GEMM: ``(M x K) @ (K x N)``; ``weight_resident`` marks weight (vs activation) operands."""

    name: str
    m: int
    k: int
    n: int
    weight_resident: bool = True

    def __post_init__(self):
        if min(self.m, self.k, self.n) < 1:
            raise ValueError(f"matmul dimensions must be positive, got {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def input_elements(self) -> int:
        return self.m * self.k

    @property
    def weight_elements(self) -> int:
        return self.k * self.n

    @property
    def output_elements(self) -> int:
        return self.m * self.n


@dataclass(frozen=True)
class NonlinearOp:
    """One nonlinear operator application: ``num_vectors`` vectors of ``vector_length`` elements."""

    name: str
    kind: str  # "softmax", "silu", "gelu"
    num_vectors: int
    vector_length: int

    def __post_init__(self):
        if self.kind not in ("softmax", "silu", "gelu", "sigmoid", "relu"):
            raise ValueError(f"unknown nonlinear kind {self.kind!r}")
        if self.num_vectors < 1 or self.vector_length < 1:
            raise ValueError("nonlinear op sizes must be positive")

    @property
    def elements(self) -> int:
        return self.num_vectors * self.vector_length


@dataclass(frozen=True)
class LayerWorkload:
    """All operators of one decoder layer (plus how many identical layers run)."""

    name: str
    matmuls: tuple
    nonlinears: tuple
    repeat: int = 1

    @property
    def total_macs(self) -> int:
        return self.repeat * sum(op.macs for op in self.matmuls)

    @property
    def total_nonlinear_elements(self) -> int:
        return self.repeat * sum(op.elements for op in self.nonlinears)

    def scaled(self, repeat: int) -> "LayerWorkload":
        return LayerWorkload(self.name, self.matmuls, self.nonlinears, repeat=repeat)


def decoder_workload(config: ModelConfig, seq_len: int, phase: str = "decode",
                     kv_len: int = None) -> LayerWorkload:
    """Build the operator list of one decoder layer.

    Parameters
    ----------
    config:
        Model architecture (provides d_model, d_ff, heads and the MLP style).
    seq_len:
        Prefill: number of tokens processed at once.  Decode: the KV-cache
        length the single new token attends to (matching Fig. 1(b), which
        sweeps the sequence length of the decoder stage).
    phase:
        ``"prefill"`` (seq_len queries) or ``"decode"`` (1 query, ``seq_len``
        keys/values).
    kv_len:
        Optional explicit KV length; defaults to ``seq_len``.
    """
    if phase not in ("prefill", "decode"):
        raise ValueError(f"phase must be 'prefill' or 'decode', got {phase!r}")
    if seq_len < 1:
        raise ValueError("seq_len must be >= 1")
    kv_len = kv_len or seq_len
    d = config.d_model
    heads = config.n_heads
    head_dim = config.head_dim
    queries = seq_len if phase == "prefill" else 1

    matmuls = [
        MatmulOp("query", queries, d, d),
        MatmulOp("key", queries, d, d),
        MatmulOp("value", queries, d, d),
        # Attention score and context GEMMs are activation-activation products,
        # batched over heads (expressed by folding heads into M).
        MatmulOp("attn_scores", queries * heads, head_dim, kv_len, weight_resident=False),
        MatmulOp("attn_context", queries * heads, kv_len, head_dim, weight_resident=False),
        MatmulOp("out_proj", queries, d, d),
    ]
    nonlinears = [NonlinearOp("softmax", kind="softmax", num_vectors=queries * heads,
                              vector_length=kv_len)]

    if config.uses_gated_mlp:
        matmuls += [
            MatmulOp("gate", queries, d, config.d_ff),
            MatmulOp("up", queries, d, config.d_ff),
            MatmulOp("down", queries, config.d_ff, d),
        ]
        nonlinears.append(
            NonlinearOp("silu", kind="silu", num_vectors=queries, vector_length=config.d_ff)
        )
    else:
        matmuls += [
            MatmulOp("fc1", queries, d, config.d_ff),
            MatmulOp("fc2", queries, config.d_ff, d),
        ]
        nonlinears.append(
            NonlinearOp(config.activation, kind=config.activation, num_vectors=queries,
                        vector_length=config.d_ff)
        )

    return LayerWorkload(
        name=f"{config.name}-{phase}-seq{seq_len}",
        matmuls=tuple(matmuls),
        nonlinears=tuple(nonlinears),
        repeat=config.n_layers,
    )
