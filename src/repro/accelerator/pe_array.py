"""Weight-stationary PE array timing model.

The BBAL array (Fig. 7) keeps a tile of quantised weights resident in the PEs
while input activations stream through and partial sums flow out to the FP
encoder/adder.  A GEMM of shape ``(M x K) @ (K x N)`` is tiled into
``ceil(K / rows) * ceil(N / cols)`` weight tiles; each tile costs:

* ``rows`` cycles to preload the weight column (overlappable with the previous
  tile's drain, but charged explicitly — the paper's simulator does the same);
* ``M`` cycles of streaming, one input row per cycle, plus the systolic
  fill/drain latency ``rows + cols``.

Activation-activation products (attention scores/context) reload their
"weight" operand every tile as well, so they are charged identical preload
costs — which is why the attention portion of the runtime grows with sequence
length in Fig. 1(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.workloads import MatmulOp

__all__ = ["PEArray", "matmul_cycles", "TileStats"]


@dataclass(frozen=True)
class TileStats:
    """Cycle and traffic summary of one GEMM mapped onto the array."""

    cycles: int
    weight_tiles: int
    macs: int
    utilisation: float


def matmul_cycles(op: MatmulOp, rows: int, cols: int) -> TileStats:
    """Cycles to execute ``op`` on a ``rows x cols`` weight-stationary array."""
    if rows < 1 or cols < 1:
        raise ValueError("array dimensions must be positive")
    k_tiles = math.ceil(op.k / rows)
    n_tiles = math.ceil(op.n / cols)
    weight_tiles = k_tiles * n_tiles
    per_tile = rows + op.m + rows + cols  # preload + stream + fill/drain
    cycles = weight_tiles * per_tile
    ideal = op.macs / (rows * cols)
    utilisation = min(1.0, ideal / cycles) if cycles else 0.0
    return TileStats(cycles=cycles, weight_tiles=weight_tiles, macs=op.macs,
                     utilisation=utilisation)


@dataclass(frozen=True)
class PEArray:
    """A ``rows x cols`` array of identical PEs."""

    rows: int
    cols: int

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def gemm(self, op: MatmulOp) -> TileStats:
        return matmul_cycles(op, self.rows, self.cols)

    def peak_macs_per_cycle(self) -> int:
        return self.num_pes
