"""Shared ``run`` argument handling for the two command-line entry points.

``python -m repro run`` and ``python -m repro.experiments.runner`` accept the
same arguments and behave identically; both build their parser with
:func:`add_run_arguments` and execute with :func:`run_from_args`.  This lives
in the pipeline package (not the runner) so that building the CLI parser does
not import every experiment driver — the heavy imports happen only when a
run (or ``--list``) is actually requested.
"""

from __future__ import annotations

import sys

__all__ = ["add_run_arguments", "run_from_args"]


def add_run_arguments(parser) -> None:
    """Attach the shared ``run`` arguments to an argparse parser."""
    parser.add_argument("experiments", nargs="*", help="subset of experiments to run (default: all)")
    parser.add_argument("--fast", action="store_true", help="small models / fewer eval batches")
    parser.add_argument("--output-dir", default="results", help="directory for JSON/text results")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (1 = serial in-process)")
    parser.add_argument("--resume", action="store_true",
                        help="skip experiments the previous run's manifest marked completed")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the content-addressed result cache")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")


def run_from_args(args) -> int:
    """Execute a parsed ``run`` invocation; returns a process exit code."""
    if args.list:
        from repro.experiments.runner import print_catalog

        print_catalog()
        return 0

    from repro.pipeline.run import PipelineError, run_experiments

    try:
        run_experiments(args.experiments or None, fast=args.fast or None,
                        output_dir=args.output_dir, jobs=args.jobs,
                        use_cache=not args.no_cache, resume=args.resume)
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
