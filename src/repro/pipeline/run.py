"""Orchestration: cache pre-pass, zoo pre-training stage, scheduling, manifest.

:func:`run_experiments` is the engine behind ``repro run`` and the
compatibility shim :func:`repro.experiments.runner.run_all`.  One invocation:

1. resolves the requested experiment names against the registry;
2. (``resume=True``) reloads the previous run's manifest and marks every
   experiment it already completed as ``resumed``;
3. looks each remaining experiment up in the content-addressed result cache
   — hits are rewritten into the output directory without running anything;
4. builds a task graph for the misses: one task per experiment plus one
   shared upstream ``zoo:<model>`` training task per model checkpoint any of
   them needs, so concurrent experiments never train the same model twice;
5. runs the graph (serially for ``jobs=1``, on a process pool otherwise),
   emitting a progress line and rewriting ``manifest.json`` after every
   completion so the run is resumable at any point.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.reporting import ExperimentResult, load_result, save_result
from repro.pipeline.cache import ResultCache
from repro.pipeline.fingerprint import code_fingerprint, experiment_cache_key
from repro.pipeline.manifest import MANIFEST_NAME, RunManifest, TaskRecord
from repro.pipeline.scheduler import Task, run_tasks

__all__ = ["run_experiments", "PipelineError"]


class PipelineError(RuntimeError):
    """At least one experiment failed; ``failures`` maps name -> error string."""

    def __init__(self, failures: dict):
        self.failures = dict(failures)
        detail = "; ".join(f"{name}: {err}" for name, err in sorted(self.failures.items()))
        super().__init__(f"{len(self.failures)} experiment(s) failed: {detail}")


def _apply_fast_env(fast) -> None:
    """Pin ``REPRO_FAST`` so env-driven helpers agree with the explicit flag.

    Several shared resources (the evaluation corpus, model subsets) fall back
    to ``REPRO_FAST`` when no explicit flag reaches them; worker processes
    must see the same value as the parent or the zoo pre-training stage would
    train models the experiments then ignore.
    """
    if fast is not None:
        os.environ["REPRO_FAST"] = "1" if fast else "0"


def _experiment_worker(name: str, fast) -> ExperimentResult:
    """Run one experiment driver (executed in a pool worker or inline)."""
    from repro.experiments.runner import EXPERIMENTS

    _apply_fast_env(fast)
    return EXPERIMENTS[name](fast=fast)


def _train_model_worker(paper_name: str, fast) -> str:
    """Shared upstream stage: ensure one zoo checkpoint is trained and cached."""
    from repro.llm.zoo import default_corpus, get_spec, load_state_dict

    _apply_fast_env(fast)
    load_state_dict(get_spec(paper_name), corpus=default_corpus())
    return paper_name


def _default_model_deps(name: str, fast) -> tuple:
    from repro.experiments.common import experiment_model_specs

    return experiment_model_specs(name, fast)


def run_experiments(names=None, fast=None, output_dir="results", jobs: int = 1,
                    use_cache: bool = True, resume: bool = False, verbose: bool = True,
                    cache_dir=None, cache_extra: dict = None, registry=None,
                    model_deps=None, executor: str = None,
                    raise_on_error: bool = True) -> dict:
    """Run the selected experiments; returns ``{name: ExperimentResult}``.

    Parameters mirror the ``repro run`` CLI: ``jobs`` sets the worker count
    (1 = serial in-process), ``use_cache=False`` forces every driver to run,
    ``resume=True`` trusts the previous manifest in ``output_dir``.
    ``registry``/``model_deps``/``executor`` exist for tests: an injected
    ``{name: driver}`` mapping, a ``(name, fast) -> model names`` hook, and
    the scheduler executor kind.
    """
    if registry is None:
        from repro.experiments.runner import EXPERIMENTS as registry
        if model_deps is None:
            model_deps = _default_model_deps
    if model_deps is None:
        model_deps = lambda name, fast: ()  # noqa: E731

    names = list(names) if names else list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; known: {sorted(registry)}")

    from repro.experiments.common import is_fast_mode

    effective_fast = is_fast_mode(fast)
    output_dir = Path(output_dir) if output_dir is not None else None
    manifest_path = output_dir / MANIFEST_NAME if output_dir is not None else None
    cache = ResultCache(cache_dir) if use_cache else None
    code_fp = code_fingerprint()
    manifest = RunManifest(fast=effective_fast, jobs=jobs, code_fingerprint=code_fp)

    previous = RunManifest.try_load(manifest_path) if (resume and manifest_path) else None
    if previous is not None and (previous.fast != effective_fast
                                 or previous.code_fingerprint != code_fp):
        # A manifest from a different fast mode or a different source tree
        # describes different results — trusting it would serve wrong data.
        if verbose:
            print("[resume] previous manifest is from a different configuration "
                  "(fast flag or source tree changed); re-running everything", flush=True)
        previous = None

    results, pending = {}, []
    total = len(names)

    def announce(index, name, status, wall, suffix=""):
        if verbose:
            print(f"[{index:>{len(str(total))}}/{total}] {name:<22} {status:<9} "
                  f"{wall:6.1f}s{suffix}", flush=True)

    def finish(name, result, record):
        if result is not None and output_dir is not None:
            record.result_path = str(save_result(result, output_dir))
        manifest.record(record)
        if manifest_path is not None:
            manifest.save(manifest_path)
        if result is not None:
            results[name] = result

    # --- pre-pass: resume, then cache ------------------------------------
    for name in names:
        old = previous.get(name) if previous else None
        if old is not None and old.is_done() and old.result_path and Path(old.result_path).exists():
            try:
                result = load_result(old.result_path)
            except (ValueError, OSError):
                result = None  # torn/corrupt result file: fall through and re-run
            if result is not None:
                record = TaskRecord(name=name, status="resumed", cache_hit=old.cache_hit,
                                    worker="main", result_path=old.result_path)
                manifest.record(record)
                if manifest_path is not None:
                    manifest.save(manifest_path)
                results[name] = result
                announce(len(results), name, "resumed", 0.0)
                continue
        key = experiment_cache_key(name, effective_fast, code_fp, cache_extra)
        cached = cache.lookup(key) if cache is not None else None
        if cached is not None:
            record = TaskRecord(name=name, status="cached", cache_hit=True, worker="main")
            finish(name, cached, record)
            announce(len(results), name, "cached", 0.0)
            continue
        pending.append((name, key))

    # --- task graph for the misses ---------------------------------------
    tasks = {}
    for name, _key in pending:
        deps = []
        for model_name in model_deps(name, fast):
            task_name = f"zoo:{model_name}"
            if task_name not in tasks:
                tasks[task_name] = Task(name=task_name, fn=_train_model_worker,
                                        args=(model_name, fast))
            deps.append(task_name)
        if _uses_default_registry(registry):
            # dispatch by name: the worker re-imports the registry, so the
            # task payload stays a pair of plain strings (always picklable)
            tasks[name] = Task(name=name, fn=_experiment_worker, args=(name, fast),
                               deps=tuple(deps))
        else:
            tasks[name] = Task(name=name, fn=registry[name], kwargs={"fast": fast},
                               deps=tuple(deps))

    keys = dict(pending)
    done_counter = [len(results)]
    first_exception = []

    def on_complete(outcome):
        if outcome.name.startswith("zoo:"):
            if outcome.status == "failed":
                # a broken upstream stage is the run's root cause: keep its
                # exception for PipelineError chaining and record it in the
                # manifest so the error survives the process
                if outcome.exception is not None and not first_exception:
                    first_exception.append(outcome.exception)
                manifest.record(TaskRecord(name=outcome.name, status="failed",
                                           wall_time_s=outcome.wall_time_s,
                                           worker=outcome.worker, error=outcome.error))
                if manifest_path is not None:
                    manifest.save(manifest_path)
            if verbose:
                status = "trained" if outcome.status == "completed" else outcome.status
                detail = f"  ({outcome.error})" if outcome.error else ""
                print(f"[zoo] {outcome.name[4:]:<22} {status:<9} {outcome.wall_time_s:6.1f}s"
                      f"{detail}", flush=True)
            return
        name = outcome.name
        done_counter[0] += 1
        record = TaskRecord(name=name, status=outcome.status, wall_time_s=outcome.wall_time_s,
                            worker=outcome.worker, error=outcome.error)
        if outcome.status == "completed":
            result = outcome.result
            if cache is not None:
                cache.store(keys[name], result, name=name, fast=effective_fast)
            finish(name, result, record)
            if verbose:
                print(result.to_text(), flush=True)
        else:
            if outcome.exception is not None and not first_exception:
                first_exception.append(outcome.exception)
            finish(name, None, record)
        announce(done_counter[0], name, outcome.status, outcome.wall_time_s)

    if tasks:
        saved_fast_env = os.environ.get("REPRO_FAST")
        _apply_fast_env(fast)
        try:
            run_tasks(tasks, jobs=jobs, executor=executor, on_complete=on_complete)
        finally:
            if fast is not None:  # restore the caller's environment (inline runs mutate it)
                if saved_fast_env is None:
                    os.environ.pop("REPRO_FAST", None)
                else:
                    os.environ["REPRO_FAST"] = saved_fast_env

    failures = {name: rec.error for name, rec in manifest.experiments.items()
                if rec.status in ("failed", "skipped")}
    if failures and raise_on_error:
        # chain the first driver exception so its traceback stays debuggable
        raise PipelineError(failures) from (first_exception[0] if first_exception else None)
    return results


def _uses_default_registry(registry) -> bool:
    try:
        from repro.experiments.runner import EXPERIMENTS
    except ImportError:  # pragma: no cover - runner is always importable
        return False
    return registry is EXPERIMENTS
