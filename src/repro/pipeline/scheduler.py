"""Dependency-aware task scheduler over :mod:`concurrent.futures`.

The scheduler takes a set of named :class:`Task` objects with declared
dependencies and runs them as eagerly as the dependency graph allows:

* ``jobs=1`` (or ``executor="inline"``) runs everything in the calling
  process in deterministic topological order — the serial runner, unchanged;
* ``jobs>1`` submits every ready task to a :class:`ProcessPoolExecutor`
  (``executor="thread"`` swaps in threads, used by tests and useful for
  IO-bound tasks) and submits newly unblocked tasks the moment their last
  dependency finishes — there is no per-level barrier.

Failure containment: a raising task is recorded as ``failed`` and all of its
transitive dependents are marked ``skipped``; independent branches keep
running.  The scheduler never raises for task errors — callers inspect the
returned :class:`TaskOutcome` map.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

__all__ = ["Task", "TaskOutcome", "DependencyError", "topological_order", "run_tasks"]


class DependencyError(ValueError):
    """The task graph references an unknown task or contains a cycle."""


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a picklable callable plus its dependencies.

    ``fn`` must be importable from the worker process (a module-level
    function) when the process executor is used; the inline and thread
    executors accept any callable.
    """

    name: str
    fn: object
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    deps: tuple = ()


@dataclass
class TaskOutcome:
    """What happened to one task: status, payload or error, timing, worker."""

    name: str
    status: str  # "completed" | "failed" | "skipped"
    result: object = None
    error: str = ""
    exception: object = None  # the original exception of a failed task
    wall_time_s: float = 0.0
    worker: str = "main"


def topological_order(tasks) -> list:
    """Kahn's algorithm, stable in task insertion order; validates the graph.

    ``tasks`` maps name -> :class:`Task`.  Raises :class:`DependencyError`
    on unknown dependencies or cycles.
    """
    for task in tasks.values():
        for dep in task.deps:
            if dep not in tasks:
                raise DependencyError(f"task {task.name!r} depends on unknown task {dep!r}")
    remaining = {name: set(task.deps) for name, task in tasks.items()}
    order = []
    while remaining:
        ready = [name for name, deps in remaining.items() if not deps]
        if not ready:
            cycle = sorted(remaining)
            raise DependencyError(f"dependency cycle among tasks {cycle}")
        for name in ready:
            order.append(name)
            del remaining[name]
        for deps in remaining.values():
            deps.difference_update(ready)
    return order


def _call_task(fn, args, kwargs) -> dict:
    """Worker-side wrapper recording which process executed the task."""
    start = time.time()
    value = fn(*args, **kwargs)
    return {"value": value, "worker": f"pid:{os.getpid()}", "wall_time_s": time.time() - start}


def _skip_dependents(name, tasks, outcomes, reason) -> None:
    """Transitively mark every dependent of ``name`` as skipped."""
    frontier = [name]
    while frontier:
        blocked = frontier.pop()
        for task in tasks.values():
            if blocked in task.deps and task.name not in outcomes:
                outcomes[task.name] = TaskOutcome(
                    name=task.name, status="skipped",
                    error=f"upstream task {reason!r} failed",
                )
                frontier.append(task.name)


def _run_inline(tasks, order, on_complete) -> dict:
    outcomes = {}
    for name in order:
        if name in outcomes:  # already skipped through a failed upstream
            if on_complete:
                on_complete(outcomes[name])
            continue
        task = tasks[name]
        start = time.time()
        try:
            value = task.fn(*task.args, **task.kwargs)
            outcome = TaskOutcome(name=name, status="completed", result=value,
                                  wall_time_s=time.time() - start, worker="main")
        except Exception as exc:  # noqa: BLE001 — contain any task failure
            outcome = TaskOutcome(name=name, status="failed", error=f"{type(exc).__name__}: {exc}",
                                  exception=exc, wall_time_s=time.time() - start, worker="main")
            _skip_dependents(name, tasks, outcomes, reason=name)
        outcomes[name] = outcome
        if on_complete:
            on_complete(outcome)
    return outcomes


def run_tasks(tasks, jobs: int = 1, executor: str = None, on_complete=None) -> dict:
    """Run a task graph; returns ``{name: TaskOutcome}``.

    ``on_complete`` (if given) is called in the parent with each task's
    :class:`TaskOutcome` as soon as it settles — the hook behind live
    progress lines and incremental manifest writes.
    """
    tasks = dict(tasks)
    order = topological_order(tasks)  # validates even for the pool path
    if executor is None:
        executor = "inline" if jobs <= 1 else "process"
    if executor == "inline" or jobs <= 1:
        return _run_inline(tasks, order, on_complete)

    pool_cls = {"process": ProcessPoolExecutor, "thread": ThreadPoolExecutor}.get(executor)
    if pool_cls is None:
        raise ValueError(f"unknown executor {executor!r}; use 'inline', 'thread' or 'process'")

    outcomes = {}
    waiting = {name: set(task.deps) for name, task in tasks.items()}
    starts, futures = {}, {}
    with pool_cls(max_workers=jobs) as pool:

        def submit_ready():
            for name in [n for n, deps in waiting.items() if not deps]:
                task = tasks[name]
                del waiting[name]
                starts[name] = time.time()
                futures[pool.submit(_call_task, task.fn, task.args, task.kwargs)] = name

        submit_ready()
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                name = futures.pop(future)
                elapsed = time.time() - starts[name]
                try:
                    payload = future.result()
                    outcome = TaskOutcome(name=name, status="completed", result=payload["value"],
                                          wall_time_s=payload["wall_time_s"],
                                          worker=payload["worker"])
                except Exception as exc:  # noqa: BLE001 — contain any task failure
                    outcome = TaskOutcome(name=name, status="failed",
                                          error=f"{type(exc).__name__}: {exc}",
                                          exception=exc, wall_time_s=elapsed)
                    _skip_dependents(name, tasks, outcomes, reason=name)
                    for skipped in [n for n in outcomes if n in waiting]:
                        del waiting[skipped]
                outcomes[name] = outcome
                if on_complete:
                    on_complete(outcome)
                for deps in waiting.values():
                    deps.discard(name)
            submit_ready()
    # report skipped tasks that never reached the pool
    for name, outcome in outcomes.items():
        if outcome.status == "skipped" and on_complete:
            on_complete(outcome)
    return outcomes
