"""Content fingerprints keying the experiment result cache.

A cached experiment result is only valid while the code that produced it is
unchanged, so cache keys mix three ingredients:

* the experiment name and the resolved fast flag,
* a fingerprint of the ``repro`` source tree (:func:`code_fingerprint`),
* an optional JSON-safe ``extra`` mapping for run configuration that affects
  the output (e.g. an overridden model list).

Everything is plain SHA-256 over file contents — no mtimes, so the
fingerprint is stable across checkouts and CI machines with identical code.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

__all__ = ["fingerprint_paths", "code_fingerprint", "experiment_cache_key"]


def fingerprint_paths(paths, root: Path = None) -> str:
    """SHA-256 over the (relative path, content) pairs of ``paths``.

    ``paths`` are sorted by their path relative to ``root`` (or their string
    form when no root is given), so the fingerprint does not depend on
    filesystem iteration order.  Changing any file's content or renaming a
    file changes the fingerprint.
    """
    digest = hashlib.sha256()
    keyed = []
    for path in paths:
        path = Path(path)
        label = str(path.relative_to(root)) if root is not None else str(path)
        keyed.append((label, path))
    for label, path in sorted(keyed):
        digest.update(label.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


_CODE_FINGERPRINT_CACHE = {}


def code_fingerprint(package_root: Path = None) -> str:
    """Fingerprint of every ``*.py`` file under the ``repro`` package.

    Memoized per process (the source tree does not change mid-run); pass an
    explicit ``package_root`` to fingerprint a different tree (tests do).
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parents[1]
    package_root = Path(package_root)
    key = str(package_root)
    if key not in _CODE_FINGERPRINT_CACHE:
        files = sorted(package_root.rglob("*.py"))
        _CODE_FINGERPRINT_CACHE[key] = fingerprint_paths(files, root=package_root)
    return _CODE_FINGERPRINT_CACHE[key]


def clear_fingerprint_cache() -> None:
    """Drop memoized code fingerprints (tests that mutate a tree need this)."""
    _CODE_FINGERPRINT_CACHE.clear()


def experiment_cache_key(name: str, fast: bool, code_fp: str = None, extra: dict = None) -> str:
    """Content-addressed cache key for one experiment run.

    >>> key = experiment_cache_key("table1", fast=True, code_fp="abc")
    >>> key == experiment_cache_key("table1", fast=True, code_fp="abc")
    True
    >>> key != experiment_cache_key("table1", fast=False, code_fp="abc")
    True
    >>> key != experiment_cache_key("table1", fast=True, code_fp="abc", extra={"seq": 1})
    True
    """
    if code_fp is None:
        code_fp = code_fingerprint()
    payload = json.dumps(
        {"name": name, "fast": bool(fast), "code": code_fp, "extra": extra or {}},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()
