"""Parallel, cached experiment pipeline.

The experiment runner used to be a serial ``for`` loop: every invocation
re-ran all 22 tables/figures from scratch, one after another, even when
nothing had changed since the previous run.  This package replaces that loop
with a small build system for experiments:

* :mod:`repro.pipeline.scheduler` — a dependency-aware task scheduler that
  runs independent tasks concurrently on a :class:`~concurrent.futures.
  ProcessPoolExecutor` (model-zoo training is declared as a shared upstream
  stage, so two experiments needing ``Llama-7B`` never train it twice in
  parallel);
* :mod:`repro.pipeline.fingerprint` — content fingerprints over the source
  tree, so results are keyed by the code that produced them;
* :mod:`repro.pipeline.cache` — a content-addressed result cache keyed on
  (experiment name, fast flag, code/config fingerprint): re-running an
  unchanged experiment is a cache hit that only rewrites the result files;
* :mod:`repro.pipeline.manifest` — a structured JSON run manifest recording
  per-experiment status, wall time, cache hits and worker, which makes
  interrupted runs resumable (``repro run --resume``);
* :mod:`repro.pipeline.run` — the orchestration layer gluing the above
  together behind :func:`run_experiments`.

The public entry points are ``repro run`` (CLI) and :func:`run_experiments`;
:func:`repro.experiments.runner.run_all` survives as a thin serial shim.
"""

from repro.pipeline.cache import ResultCache, default_result_cache_dir
from repro.pipeline.fingerprint import code_fingerprint, experiment_cache_key, fingerprint_paths
from repro.pipeline.manifest import MANIFEST_NAME, RunManifest, TaskRecord
from repro.pipeline.run import PipelineError, run_experiments
from repro.pipeline.scheduler import DependencyError, Task, TaskOutcome, run_tasks, topological_order

__all__ = [
    "run_experiments",
    "PipelineError",
    "Task",
    "TaskOutcome",
    "run_tasks",
    "topological_order",
    "DependencyError",
    "ResultCache",
    "default_result_cache_dir",
    "fingerprint_paths",
    "code_fingerprint",
    "experiment_cache_key",
    "RunManifest",
    "TaskRecord",
    "MANIFEST_NAME",
]
