"""Content-addressed result cache for experiment runs.

Each cache entry is one JSON file named after its
:func:`~repro.pipeline.fingerprint.experiment_cache_key`, holding the
serialized :class:`~repro.analysis.reporting.ExperimentResult` plus a small
metadata header (experiment name, fast flag, creation time).  Because the key
already encodes the code fingerprint, invalidation is automatic: editing any
source file changes every key, and stale entries are simply never looked up
again (``prune`` deletes them).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.reporting import ExperimentResult
from repro.core.ioutils import atomic_write_text

__all__ = ["ResultCache", "default_result_cache_dir"]


def default_result_cache_dir() -> Path:
    """Directory holding cached experiment results (``REPRO_RESULT_CACHE_DIR`` overrides)."""
    root = os.environ.get("REPRO_RESULT_CACHE_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".cache" / "results"


class ResultCache:
    """Store and look up :class:`ExperimentResult` objects by content key."""

    def __init__(self, directory=None):
        self.directory = Path(directory) if directory is not None else default_result_cache_dir()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def lookup(self, key: str):
        """Return the cached :class:`ExperimentResult` for ``key``, or ``None``."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            return ExperimentResult.from_dict(payload["result"])
        except (ValueError, KeyError, OSError):
            return None  # corrupt entry: treat as a miss, it will be overwritten

    def store(self, key: str, result: ExperimentResult, name: str = None, fast: bool = None) -> Path:
        """Write ``result`` under ``key`` atomically; returns the entry path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {
            "name": name if name is not None else result.experiment_id,
            "fast": fast,
            "created": time.time(),
            "result": result.to_dict(),
        }
        return atomic_write_text(path, json.dumps(payload, indent=2, default=float))

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def prune(self, keep=()) -> int:
        """Delete every entry whose key is not in ``keep``; returns the count removed."""
        keep = set(keep)
        removed = 0
        if not self.directory.exists():
            return 0
        for path in self.directory.glob("*.json"):
            if path.stem not in keep:
                path.unlink(missing_ok=True)
                removed += 1
        return removed
