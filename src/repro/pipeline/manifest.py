"""Structured run manifest: what ran, how long it took, and how it ended.

The pipeline writes ``manifest.json`` into the output directory and rewrites
it after *every* task completion, so an interrupted run (crash, Ctrl-C, a
failing experiment) always leaves an accurate record behind.  ``repro run
--resume`` reads that record and skips every experiment that already
completed, re-running only what failed or never started.

Statuses:

========== ==========================================================
status     meaning
========== ==========================================================
pending    scheduled but not finished (only seen in crashed manifests)
completed  driver ran in this invocation and succeeded
cached     result served from the content-addressed cache
resumed    skipped because a previous manifest marked it done
failed     driver raised; ``error`` holds the message
skipped    not run because an upstream dependency failed
========== ==========================================================
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core.ioutils import atomic_write_text

__all__ = ["TaskRecord", "RunManifest", "MANIFEST_NAME"]

#: File name of the manifest inside the run's output directory.
MANIFEST_NAME = "manifest.json"

#: Statuses that mean "this experiment's result exists and is current".
DONE_STATUSES = ("completed", "cached", "resumed")


@dataclass
class TaskRecord:
    """Outcome of one experiment (or upstream stage) within a run."""

    name: str
    status: str = "pending"
    wall_time_s: float = 0.0
    cache_hit: bool = False
    worker: str = ""
    error: str = ""
    result_path: str = ""

    def is_done(self) -> bool:
        return self.status in DONE_STATUSES


@dataclass
class RunManifest:
    """Everything recorded about one ``repro run`` invocation."""

    created: float = field(default_factory=time.time)
    fast: bool = False
    jobs: int = 1
    code_fingerprint: str = ""
    experiments: dict = field(default_factory=dict)  # name -> TaskRecord

    def record(self, record: TaskRecord) -> TaskRecord:
        self.experiments[record.name] = record
        return record

    def get(self, name: str):
        return self.experiments.get(name)

    def to_dict(self) -> dict:
        return {
            "created": self.created,
            "fast": self.fast,
            "jobs": self.jobs,
            "code_fingerprint": self.code_fingerprint,
            "experiments": {name: asdict(rec) for name, rec in self.experiments.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        manifest = cls(
            created=payload.get("created", 0.0),
            fast=bool(payload.get("fast", False)),
            jobs=int(payload.get("jobs", 1)),
            code_fingerprint=payload.get("code_fingerprint", ""),
        )
        for name, rec in payload.get("experiments", {}).items():
            known = {f: rec.get(f) for f in TaskRecord.__dataclass_fields__ if f in rec}
            manifest.experiments[name] = TaskRecord(**{"name": name, **known})
        return manifest

    def save(self, path) -> Path:
        """Atomically (re)write the manifest; called after every task event."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def try_load(cls, path):
        """Load a manifest if present and parseable, else ``None``."""
        path = Path(path)
        if not path.exists():
            return None
        try:
            return cls.load(path)
        except (ValueError, OSError):
            return None
