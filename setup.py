"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments whose tooling predates PEP 660
editable installs (``pip install -e . --no-use-pep517``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "BBAL: Bidirectional Block Floating Point quantisation accelerator for LLMs "
        "(DAC 2025) - full Python reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
